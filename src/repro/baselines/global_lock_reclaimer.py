"""A blocking reclamation baseline: global reader counter + drain.

The ablation counterpart to the :class:`~repro.core.epoch_manager.EpochManager`.
Instead of per-locale epochs, it keeps **one** global atomic reader count
(on locale 0): every task entering a protected region does a remote
``fetch_add`` and exiting does a ``fetch_sub``.  Reclamation spins until
the count is zero, then frees everything deferred.

Two deliberate weaknesses, both measured by the ablation benchmark:

* every ``enter``/``exit`` is a *remote* atomic on one hot cell — the
  coordination cost grows with locales instead of staying flat (contrast
  Figure 7's privatized pin/unpin);
* ``try_reclaim`` *blocks* (spins) waiting for readers, so a stalled
  reader stalls reclamation — the liveness weakening the paper's
  non-blocking design avoids importing into its data structures.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List

from ..atomics.integer import AtomicInt64
from ..memory.address import GlobalAddress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["GlobalLockReclaimer", "ReclaimerGuard"]


class ReclaimerGuard:
    """Token-shaped adapter so workloads can swap reclaimers uniformly."""

    #: Guard-protocol flag (see repro.reclaim): no per-pointer hazards.
    needs_protect = False

    __slots__ = ("_mgr",)

    def __init__(self, mgr: "GlobalLockReclaimer") -> None:
        self._mgr = mgr

    def pin(self) -> None:
        """Enter the protected region (remote fetch_add on the hot counter)."""
        self._mgr.enter()

    def unpin(self) -> None:
        """Leave the protected region (remote fetch_sub)."""
        self._mgr.exit()

    def protect(self, addr: GlobalAddress, slot: int = 0) -> GlobalAddress:
        """Guard-protocol no-op (region-based protection)."""
        return addr

    def defer_delete(self, addr: GlobalAddress) -> None:
        """Queue ``addr`` for the next drain."""
        self._mgr.defer(addr)

    def try_reclaim(self) -> bool:
        """Drain if no readers are active (spins briefly)."""
        return self._mgr.try_reclaim()

    def unregister(self) -> None:
        """No-op (no per-task state to release)."""

    close = unregister


class GlobalLockReclaimer:
    """Reader-counter-based deferred reclamation (blocking baseline)."""

    def __init__(self, runtime: "Runtime", *, home: int = 0, spin_limit: int = 64) -> None:
        self._rt = runtime
        self.home = runtime.locale(home).id
        #: The single hot cell every task on every locale hits.
        self.readers = AtomicInt64(runtime, self.home, 0, name="glr.readers")
        self._defer_lock = threading.Lock()
        self._deferred: List[GlobalAddress] = []
        #: Bounded spin in try_reclaim (it *blocks*, but not forever).
        self.spin_limit = spin_limit
        self.objects_reclaimed = 0

    def register(self) -> ReclaimerGuard:
        """Interface parity with ``EpochManager.register``."""
        return ReclaimerGuard(self)

    # ------------------------------------------------------------------
    def enter(self) -> None:
        """Reader entry: one (usually remote) atomic increment."""
        self.readers.add(1)

    def exit(self) -> None:
        """Reader exit: one (usually remote) atomic decrement."""
        self.readers.sub(1)

    def defer(self, addr: GlobalAddress) -> None:
        """Queue an address for the next successful drain."""
        with self._defer_lock:
            self._deferred.append(addr)

    # ------------------------------------------------------------------
    def try_reclaim(self) -> bool:
        """Spin (bounded) for zero readers, then free everything queued.

        Returns True when a drain happened.  The spin is the blocking step
        the paper's design eliminates.
        """
        for _ in range(self.spin_limit):
            if self.readers.read() == 0:
                break
        else:
            return False
        with self._defer_lock:
            batch, self._deferred = self._deferred, []
        if not batch:
            return True
        # NOTE: unlike EBR this has a race window (a reader may enter just
        # after the zero observation) — acceptable for a baseline whose
        # purpose is cost comparison; correctness-critical tests use EBR.
        by_locale: dict = {}
        for addr in batch:
            by_locale.setdefault(addr.locale, []).append(addr.offset)
        for lid, offsets in by_locale.items():
            self._rt.free_bulk(lid, offsets)
        self.objects_reclaimed += len(batch)
        return True

    def clear(self) -> int:
        """Free everything regardless of readers (quiescent teardown)."""
        with self._defer_lock:
            batch, self._deferred = self._deferred, []
        by_locale: dict = {}
        for addr in batch:
            by_locale.setdefault(addr.locale, []).append(addr.offset)
        for lid, offsets in by_locale.items():
            self._rt.free_bulk(lid, offsets)
        self.objects_reclaimed += len(batch)
        return len(batch)
