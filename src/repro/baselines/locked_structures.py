"""Lock-based baseline structures: stack, queue, map.

These are the synchronized counterparts the non-blocking structures are
measured against.  Each guards plain Python storage with one
:class:`~repro.baselines.spinlock.SpinLock` whose flag lives on the
structure's home locale; every operation additionally charges the data
access itself (a GET/PUT against the home locale when called remotely), so
the baselines pay realistic PGAS prices, not just lock overhead.

Semantically they are trivially correct (single lock), which also makes
them the *oracles* in differential tests: the non-blocking structures must
agree with them on any sequential history.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from ..errors import EmptyStructureError
from ..runtime.context import maybe_context
from .spinlock import SpinLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["LockedStack", "LockedQueue", "LockedMap"]


class _LockedBase:
    """Shared home-locale bookkeeping and data-access charging."""

    def __init__(self, runtime: "Runtime", locale: int, name: str) -> None:
        self._rt = runtime
        self.home = runtime.locale(locale).id
        self.lock = SpinLock(runtime, locale=self.home, name=f"{name}.lock")

    def _charge_data(self, nbytes: int = 64, write: bool = False) -> None:
        """Charge the payload access that the lock protects."""
        ctx = maybe_context()
        if ctx is None:
            return
        if write:
            self._rt.network.write(ctx, self.home, nbytes=nbytes)
        else:
            self._rt.network.read(ctx, self.home, nbytes=nbytes)


class LockedStack(_LockedBase):
    """A LIFO stack under one global spinlock."""

    def __init__(self, runtime: "Runtime", *, locale: int = 0, name: str = "lstack") -> None:
        super().__init__(runtime, locale, name)
        self._items: List[Any] = []

    def push(self, value: Any) -> None:
        """Push under the lock (one remote PUT when called off-locale)."""
        with self.lock:
            self._charge_data(write=True)
            self._items.append(value)

    def pop(self) -> Any:
        """Pop under the lock; raises :class:`EmptyStructureError` if empty."""
        with self.lock:
            self._charge_data(write=True)
            if not self._items:
                raise EmptyStructureError("pop from empty LockedStack")
            return self._items.pop()

    def try_pop(self) -> Optional[Any]:
        """Pop or ``None`` when empty."""
        try:
            return self.pop()
        except EmptyStructureError:
            return None

    def peek(self) -> Optional[Any]:
        """Read the top without removal."""
        with self.lock:
            self._charge_data()
            return self._items[-1] if self._items else None

    def __len__(self) -> int:
        with self.lock:
            return len(self._items)


class LockedQueue(_LockedBase):
    """A FIFO queue under one global spinlock."""

    def __init__(self, runtime: "Runtime", *, locale: int = 0, name: str = "lqueue") -> None:
        super().__init__(runtime, locale, name)
        self._items: deque = deque()

    def enqueue(self, value: Any) -> None:
        """Append under the lock."""
        with self.lock:
            self._charge_data(write=True)
            self._items.append(value)

    def dequeue(self) -> Any:
        """Remove the oldest; raises :class:`EmptyStructureError` if empty."""
        with self.lock:
            self._charge_data(write=True)
            if not self._items:
                raise EmptyStructureError("dequeue from empty LockedQueue")
            return self._items.popleft()

    def try_dequeue(self) -> Optional[Any]:
        """Dequeue or ``None`` when empty."""
        try:
            return self.dequeue()
        except EmptyStructureError:
            return None

    def __len__(self) -> int:
        with self.lock:
            return len(self._items)


class LockedMap(_LockedBase):
    """A hash map under one global spinlock (the hash-table baseline)."""

    def __init__(self, runtime: "Runtime", *, locale: int = 0, name: str = "lmap") -> None:
        super().__init__(runtime, locale, name)
        self._data: Dict[Any, Any] = {}

    def put(self, key: Any, value: Any) -> bool:
        """Insert/update; True when the key is new."""
        with self.lock:
            self._charge_data(write=True)
            added = key not in self._data
            self._data[key] = value
            return added

    def get(self, key: Any, default: Any = None) -> Any:
        """Look up under the lock."""
        with self.lock:
            self._charge_data()
            return self._data.get(key, default)

    def contains(self, key: Any) -> bool:
        """Membership test under the lock."""
        with self.lock:
            self._charge_data()
            return key in self._data

    def remove(self, key: Any) -> bool:
        """Delete; True when present."""
        with self.lock:
            self._charge_data(write=True)
            return self._data.pop(key, _MISSING) is not _MISSING

    def update(self, key: Any, fn, default: Any = None) -> Any:
        """Atomic read-modify-write under the lock."""
        with self.lock:
            self._charge_data(write=True)
            nv = fn(self._data.get(key, default))
            self._data[key] = nv
            return nv

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Snapshot of the contents."""
        with self.lock:
            return iter(list(self._data.items()))

    def __len__(self) -> int:
        with self.lock:
            return len(self._data)


_MISSING = object()
