"""Blocking baselines: the synchronized counterparts for every comparison.

* :class:`~repro.baselines.spinlock.SpinLock` — cost-modelled test-and-set
  lock.
* :class:`~repro.baselines.locked_structures.LockedStack` /
  :class:`~repro.baselines.locked_structures.LockedQueue` /
  :class:`~repro.baselines.locked_structures.LockedMap` — single-lock
  structures; also the sequential oracles in differential tests.
* :class:`~repro.baselines.global_lock_reclaimer.GlobalLockReclaimer` —
  a blocking, hot-counter reclamation scheme the EpochManager is ablated
  against.
"""

from .global_lock_reclaimer import GlobalLockReclaimer, ReclaimerGuard
from .locked_structures import LockedMap, LockedQueue, LockedStack
from .spinlock import SpinLock

__all__ = [
    "SpinLock",
    "LockedStack",
    "LockedQueue",
    "LockedMap",
    "GlobalLockReclaimer",
    "ReclaimerGuard",
]
