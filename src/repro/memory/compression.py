"""Pointer compression: 48-bit virtual address + 16-bit locale in 64 bits.

The paper's key enabler for RDMA atomics on class instances: today's x86-64
processors use only the low 48 bits of a virtual address, so the top 16 bits
of a 64-bit pointer can carry the locale id.  A compressed pointer fits in
the 64-bit network atomics that Gemini/Aries offer, so an ``AtomicObject``
can be read/CAS'd/exchanged entirely by the NIC.

The compression is exact for systems with fewer than ``2**16`` locales; at
or beyond that the library must fall back to the 128-bit DCAS path (or the
descriptor-table extension) — :func:`compress` raises
:class:`~repro.errors.TooManyLocalesError` so callers can take that path
deliberately rather than corrupt addresses.

Layout (bit 63 .. bit 0)::

    +----------------+--------------------------------------------+
    | locale (16 b)  |            virtual address (48 b)          |
    +----------------+--------------------------------------------+

``nil`` (locale 0, offset 0) compresses to integer 0, matching the common
C convention that a null pointer is all-zero bits.
"""

from __future__ import annotations

from ..errors import CompressionError, TooManyLocalesError
from .address import NIL, GlobalAddress

__all__ = [
    "LOCALE_BITS",
    "ADDRESS_BITS",
    "MAX_COMPRESSIBLE_LOCALES",
    "ADDRESS_MASK",
    "COMPRESSED_NIL",
    "compress",
    "decompress",
    "compressible",
]

#: Bits of locality information packed into the pointer's upper bits.
LOCALE_BITS = 16
#: Bits of virtual address actually used by current processors.
ADDRESS_BITS = 48
#: Compression supports strictly fewer than this many locales.
MAX_COMPRESSIBLE_LOCALES = 1 << LOCALE_BITS
#: Mask selecting the virtual-address bits of a compressed word.
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
#: The compressed representation of the nil wide pointer.
COMPRESSED_NIL = 0


def compressible(addr: GlobalAddress) -> bool:
    """True when ``addr`` fits the 16+48 packed representation."""
    return 0 <= addr.locale < MAX_COMPRESSIBLE_LOCALES and 0 <= addr.offset <= ADDRESS_MASK


def compress(addr: GlobalAddress) -> int:
    """Pack a wide pointer into a single 64-bit integer.

    Raises
    ------
    TooManyLocalesError
        If the locale id needs more than 16 bits.
    CompressionError
        If the offset exceeds 48 bits (cannot happen for addresses issued
        by :class:`~repro.memory.heap.Heap`, which enforces the bound).
    """
    if addr.offset == 0:
        return COMPRESSED_NIL
    if not (0 <= addr.locale < MAX_COMPRESSIBLE_LOCALES):
        raise TooManyLocalesError(
            f"locale {addr.locale} does not fit in {LOCALE_BITS} bits; use the"
            " DCAS fallback or the descriptor-table extension"
        )
    if not (0 < addr.offset <= ADDRESS_MASK):
        raise CompressionError(
            f"offset {addr.offset:#x} does not fit in {ADDRESS_BITS} bits"
        )
    return (addr.locale << ADDRESS_BITS) | addr.offset


def decompress(word: int) -> GlobalAddress:
    """Unpack a 64-bit compressed pointer back into a wide pointer.

    The inverse of :func:`compress`; ``decompress(0)`` is ``NIL``.
    """
    if word == COMPRESSED_NIL:
        return NIL
    if not (0 <= word < (1 << 64)):
        raise CompressionError(f"compressed pointer {word:#x} is not a 64-bit word")
    return GlobalAddress(locale=word >> ADDRESS_BITS, offset=word & ADDRESS_MASK)
