"""Per-locale simulated heaps with precise liveness tracking.

Each locale owns a :class:`Heap` that hands out 48-bit virtual addresses
for Python payload objects.  Two properties matter for the reproduction:

* **LIFO address reuse.**  Freed addresses go on a free list and the *most
  recently freed* address is reused first — exactly the allocator behaviour
  that makes the ABA problem real.  The test suite exploits this to make a
  compare-and-swap succeed wrongly on a recycled address, and to show the
  ``ABA`` wrapper / EBR preventing it.

* **Precise hazard detection.**  Every slot remembers whether it is live
  and how many times its address has been recycled (its *generation*).
  Loading through a stale address raises
  :class:`~repro.errors.UseAfterFreeError`; freeing twice raises
  :class:`~repro.errors.DoubleFreeError`.  On real hardware these are
  silent corruption; here they are deterministic test signals, which is
  how we *prove* the EpochManager makes reclamation safe.

The heap is purely mechanical — it charges no virtual time.  Cost accounting
lives in :class:`~repro.comm.network.NetworkModel` and is applied by the
runtime's allocation helpers, keeping policy and mechanism separate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List

from ..errors import (
    DoubleFreeError,
    HeapExhaustedError,
    InvalidAddressError,
    UseAfterFreeError,
)
from .address import GlobalAddress
from .compression import ADDRESS_MASK

__all__ = ["Heap", "HeapStats"]


@dataclass
class HeapStats:
    """Counters describing one heap's allocation history."""

    #: Allocations ever performed.
    allocations: int = 0
    #: Frees ever performed.
    frees: int = 0
    #: Addresses handed out more than once (ABA fuel).
    reuses: int = 0
    #: Currently live objects.
    live: int = 0
    #: High-water mark of live objects.
    peak_live: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {
            "allocations": self.allocations,
            "frees": self.frees,
            "reuses": self.reuses,
            "live": self.live,
            "peak_live": self.peak_live,
        }


class _Slot:
    """One allocation slot: payload, liveness, and recycle generation."""

    __slots__ = ("payload", "live", "generation")

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.live = True
        #: Incremented every time the slot's address is re-allocated.
        self.generation = 0


class Heap:
    """The simulated memory of one locale.

    Parameters
    ----------
    locale_id:
        Owning locale (recorded into issued :class:`GlobalAddress`es).
    base:
        First address handed out; must be nonzero so ``nil`` (offset 0) can
        never alias an allocation.
    alignment:
        Power-of-two allocation alignment.  Guarantees the low bits of every
        address are zero, so data structures may steal them for tag bits
        (the Harris list's deletion mark does).
    """

    def __init__(self, locale_id: int, *, base: int = 0x1000, alignment: int = 16) -> None:
        if base <= 0:
            raise ValueError("heap base must be positive (offset 0 is nil)")
        if alignment < 2 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two >= 2")
        self.locale_id = locale_id
        self.alignment = alignment
        self._lock = threading.Lock()
        self._slots: Dict[int, _Slot] = {}
        self._free: List[int] = []  # LIFO free list of offsets
        self._next = ((base + alignment - 1) // alignment) * alignment
        self.stats = HeapStats()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, payload: Any) -> GlobalAddress:
        """Allocate a slot for ``payload`` and return its wide pointer.

        Reuses the most recently freed address when one exists (LIFO), the
        behaviour that maximizes ABA hazard — deliberately.
        """
        with self._lock:
            if self._free:
                offset = self._free.pop()
                slot = self._slots[offset]
                slot.payload = payload
                slot.live = True
                slot.generation += 1
                self.stats.reuses += 1
            else:
                offset = self._next
                self._next += self.alignment
                if self._next > ADDRESS_MASK:
                    raise HeapExhaustedError(
                        f"locale {self.locale_id} heap exhausted 48-bit space"
                    )
                self._slots[offset] = _Slot(payload)
            self.stats.allocations += 1
            self.stats.live += 1
            if self.stats.live > self.stats.peak_live:
                self.stats.peak_live = self.stats.live
            return GlobalAddress(self.locale_id, offset)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def _slot_checked(self, offset: int) -> _Slot:
        slot = self._slots.get(offset)
        if slot is None:
            raise InvalidAddressError(
                f"locale {self.locale_id}: {offset:#x} was never allocated"
            )
        if not slot.live:
            raise UseAfterFreeError(
                f"locale {self.locale_id}: use-after-free at {offset:#x}"
            )
        return slot

    def load(self, offset: int) -> Any:
        """Return the live payload at ``offset``.

        Raises :class:`UseAfterFreeError` if the slot was freed — the
        hazard EBR exists to prevent.
        """
        with self._lock:
            return self._slot_checked(offset).payload

    def store(self, offset: int, payload: Any) -> None:
        """Replace the payload at a live ``offset`` (a remote PUT target)."""
        with self._lock:
            self._slot_checked(offset).payload = payload

    def is_live(self, offset: int) -> bool:
        """True when ``offset`` names a currently-allocated slot."""
        with self._lock:
            slot = self._slots.get(offset)
            return bool(slot and slot.live)

    def generation(self, offset: int) -> int:
        """How many times this address has been recycled (0 = never).

        Exposed for tests that must *witness* an ABA (same address, new
        object) rather than infer it.
        """
        with self._lock:
            slot = self._slots.get(offset)
            if slot is None:
                raise InvalidAddressError(
                    f"locale {self.locale_id}: {offset:#x} was never allocated"
                )
            return slot.generation

    # ------------------------------------------------------------------
    # deallocation
    # ------------------------------------------------------------------
    def free(self, offset: int) -> None:
        """Free the slot at ``offset``; its address becomes reusable.

        Raises :class:`DoubleFreeError` on repeated frees of the same
        allocation and :class:`InvalidAddressError` for unknown addresses.
        """
        with self._lock:
            slot = self._slots.get(offset)
            if slot is None:
                raise InvalidAddressError(
                    f"locale {self.locale_id}: free of unallocated {offset:#x}"
                )
            if not slot.live:
                raise DoubleFreeError(
                    f"locale {self.locale_id}: double free at {offset:#x}"
                )
            slot.live = False
            slot.payload = None  # drop the reference; simulate destruction
            self._free.append(offset)
            self.stats.frees += 1
            self.stats.live -= 1

    def free_bulk(self, offsets: List[int]) -> int:
        """Free many slots at once; returns how many were freed.

        The scatter list in ``tryReclaim`` funnels every dead object owned
        by this locale through one call, mirroring the paper's bulk
        transfer-and-delete.
        """
        freed = 0
        for off in offsets:
            self.free(off)
            freed += 1
        return freed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        """Number of live allocations."""
        with self._lock:
            return self.stats.live

    def snapshot_stats(self) -> HeapStats:
        """Copy of the stats counters (safe to keep across resets)."""
        with self._lock:
            return HeapStats(**self.stats.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Heap(locale={self.locale_id}, live={self.stats.live},"
            f" allocs={self.stats.allocations}, frees={self.stats.frees})"
        )
