"""Wide pointers: the 128-bit (locale, virtual address) pair.

Chapel represents a class instance reference as a *widened pointer*: 64 bits
of virtual address plus 64 bits of locality information.  This module
provides that representation (:class:`GlobalAddress`) along with the ``nil``
sentinel.  The companion :mod:`repro.memory.compression` module packs a wide
pointer into a single 64-bit word when possible.

Addresses are value objects — hashable, comparable, immutable — so they can
be stored in atomics, sets and dicts freely.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["GlobalAddress", "NIL", "is_nil"]


class GlobalAddress(NamedTuple):
    """A wide pointer: which locale an object lives on and where.

    ``offset`` is the 48-bit virtual address within that locale's simulated
    heap.  ``GlobalAddress(0, 0)`` is reserved as ``nil`` (heaps never hand
    out offset 0; see :class:`~repro.memory.heap.Heap`).
    """

    locale: int
    offset: int

    @property
    def is_nil(self) -> bool:
        """True for the null wide pointer."""
        return self.offset == 0

    def __repr__(self) -> str:
        if self.is_nil:
            return "GlobalAddress(nil)"
        return f"GlobalAddress(locale={self.locale}, offset={self.offset:#x})"


#: The null wide pointer. Compresses to integer 0.
NIL = GlobalAddress(0, 0)


def is_nil(addr: "GlobalAddress | None") -> bool:
    """True when ``addr`` is ``None`` or the nil wide pointer."""
    return addr is None or addr.offset == 0
