"""Distributed-memory substrate: wide pointers, compression, heaps.

* :class:`~repro.memory.address.GlobalAddress` — the 128-bit wide pointer.
* :func:`~repro.memory.compression.compress` /
  :func:`~repro.memory.compression.decompress` — the 48+16-bit packed
  pointer that enables 64-bit RDMA atomics on objects.
* :class:`~repro.memory.heap.Heap` — per-locale heap with LIFO address
  reuse (real ABA hazards) and precise use-after-free detection.
"""

from .address import NIL, GlobalAddress, is_nil
from .compression import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    COMPRESSED_NIL,
    LOCALE_BITS,
    MAX_COMPRESSIBLE_LOCALES,
    compress,
    compressible,
    decompress,
)
from .heap import Heap, HeapStats

__all__ = [
    "GlobalAddress",
    "NIL",
    "is_nil",
    "compress",
    "decompress",
    "compressible",
    "LOCALE_BITS",
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "MAX_COMPRESSIBLE_LOCALES",
    "COMPRESSED_NIL",
    "Heap",
    "HeapStats",
]
