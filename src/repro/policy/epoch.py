"""The epoch-advance policies: fixed, threshold, decay, grace.

These adapt the isnad ``EpochPolicy`` / ``AdaptiveEpochCalculator``
shapes (threshold triggers, decay curves, grace periods — SNIPPETS.md
snippet 3) to the simulator's determinism rules: every wall-clock input
of the originals is replaced by a virtual-time fact, and the decay policy
is *probability-free* — it decays a threshold along the deferral streak
instead of sampling an expiry, so repeated runs decide identically.

All four are cheap Python predicates over an
:class:`~repro.policy.base.EpochFacts` snapshot; a deferral skips the
entire election/scan/drain pipeline and costs zero virtual time.
"""

from __future__ import annotations

from .base import DECAY_CURVES, EpochFacts, EpochPolicyBase

__all__ = [
    "EPOCH_POLICIES",
    "FixedEpochPolicy",
    "ThresholdEpochPolicy",
    "DecayEpochPolicy",
    "GraceEpochPolicy",
]


class FixedEpochPolicy(EpochPolicyBase):
    """Today's cadence: every reclaim attempt proceeds (the default).

    ``always_advance`` short-circuits the managers before any fact is
    computed, which is what keeps the default policy bit-identical to —
    and exactly as fast as — the pre-policy engine.
    """

    kind = "fixed"
    always_advance = True

    def _should_advance(self, facts: EpochFacts) -> bool:
        return True

    def spec(self) -> str:
        return "fixed"


class ThresholdEpochPolicy(EpochPolicyBase):
    """Advance only once a scan unit's retired count crosses ``n``.

    Below the threshold the attempt is deferred outright — no election,
    no global scan — so sparse retirement traffic stops paying the scan
    traversals that dominate reclamation cost on degraded interconnects.
    The trade is memory residency: limbo lists grow until the threshold
    (or a ``clear``) releases them.
    """

    kind = "threshold"

    def __init__(self, n: int) -> None:
        super().__init__()
        if n < 1:
            raise ValueError(f"threshold policy requires n >= 1, got {n}")
        self.n = int(n)

    def _should_advance(self, facts: EpochFacts) -> bool:
        return facts.max_pending >= self.n

    def spec(self) -> str:
        return f"threshold:{self.n}"


class DecayEpochPolicy(ThresholdEpochPolicy):
    """A threshold that decays along the deferral streak.

    The effective threshold at each decision is ``n * curve(streak /
    horizon)`` where ``streak`` counts deferrals since the last allowed
    advance and ``curve`` maps ``[0, 1] -> [1, 0]``:

    * ``linear`` — ``1 - t``;
    * ``exponential`` — ``2**(-4t)``, clipped to 0 at ``t >= 1``;
    * ``step`` — ``1`` below ``t = 1``, then ``0``.

    Every curve reaches 0 at the horizon, so a decay policy defers at
    most ``horizon`` consecutive times — backlog below the threshold
    still reclaims eventually, without any randomness (the
    probability-free replacement for sampled expiry).
    """

    kind = "decay"

    def __init__(self, n: int, curve: str = "linear", horizon: int = 8) -> None:
        super().__init__(n)
        if curve not in DECAY_CURVES:
            raise ValueError(
                f"unknown decay curve {curve!r}; expected one of"
                f" {list(DECAY_CURVES)}"
            )
        if horizon < 1:
            raise ValueError(f"decay horizon must be >= 1, got {horizon}")
        self.curve = curve
        self.horizon = int(horizon)

    def effective_threshold(self) -> int:
        """The decayed threshold at the current deferral streak."""
        t = self.streak / self.horizon
        if t >= 1.0:
            return 0
        if self.curve == "linear":
            frac = 1.0 - t
        elif self.curve == "exponential":
            frac = 2.0 ** (-4.0 * t)
        else:  # step
            frac = 1.0
        return int(self.n * frac)

    def _should_advance(self, facts: EpochFacts) -> bool:
        eff = self.effective_threshold()
        return eff <= 0 or facts.max_pending >= eff

    def spec(self) -> str:
        if self.curve == "linear" and self.horizon == 8:
            return f"decay:{self.n}"
        return f"decay:{self.n}:{self.curve}:{self.horizon}"


class GraceEpochPolicy(EpochPolicyBase):
    """Hold the epoch open for a virtual grace period after the last pin.

    Advance only when ``facts.now - facts.last_pin >= grace`` — a burst
    of recent protected regions holds reclamation off until the structure
    has been quiet for ``grace`` virtual seconds.  ``wants_pin_times``
    makes guards record their pin timestamps (one conditional store per
    pin, only while a grace policy is installed); with no pin ever
    recorded the policy advances immediately.
    """

    kind = "grace"
    wants_pin_times = True

    def __init__(self, grace: float) -> None:
        super().__init__()
        if not (grace > 0.0):
            raise ValueError(f"grace period must be > 0, got {grace}")
        self.grace = float(grace)

    def _should_advance(self, facts: EpochFacts) -> bool:
        if facts.last_pin is None:
            return True
        return facts.now - facts.last_pin >= self.grace

    def spec(self) -> str:
        return f"grace:{self.grace:g}"


#: Registry of epoch-policy kinds (the valid names in axis errors).
EPOCH_POLICIES = ("fixed", "threshold", "decay", "grace")
