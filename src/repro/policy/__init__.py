"""Pluggable virtual-time policies for epoch cadence and aggregation.

The paper's EBR advances epochs on one hard-coded cadence — every
``tryReclaim`` call runs the election and the global scan — and the
uplink message-aggregation window (:mod:`repro.comm.aggregation`) is one
static knob.  This package makes both *policies*: small strategy objects
that observe **virtual-time facts** and decide

* whether a reclaim attempt should run at all (**epoch-advance
  policies**: ``fixed`` — today's cadence and the bit-identical default —
  ``threshold``, ``decay``, ``grace``), and
* how wide the aggregation window should be (**window policies**:
  ``static`` — today's knob — and ``adaptive:min..max``).

The policy axis is machine configuration like ``reclaimer`` or
``topology``: one spec string (``RuntimeConfig.policy`` /
``TopologySpec.policy`` / ``--policy``) names an epoch half and a window
half joined by ``+`` — ``"threshold:64+adaptive:4..64"`` — with either
half omissible (``"fixed"``, ``"grace:0.0001"``, ``"adaptive:2..32"``).

Determinism discipline (the hard requirement, enforced by
``tests/test_policy.py``): decisions read **only virtual-time facts** —
retired/pending counts, pin timestamps on the virtual clock, batch
occupancy, uplink queueing delay — never wall-clock time, thread
identity, or arrival order.  Epoch decisions run at the root-driven
reclaim points of the workload discipline (:mod:`repro.bench.workloads`);
window observations accumulate under commutative-exact folds (integer
counts and floating-point ``max`` — never float sums) so the adaptive
state is independent of real-thread interleaving, and the window itself
mutates only at sequential root-driven tick points.

See docs/POLICY.md for the protocol, the per-policy semantics, and the
``policy-sweep-*`` head-to-head results.
"""

from .base import (
    DECAY_CURVES,
    EpochFacts,
    EpochPolicyBase,
    PolicyBase,
    WindowPolicyBase,
)
from .epoch import (
    EPOCH_POLICIES,
    DecayEpochPolicy,
    FixedEpochPolicy,
    GraceEpochPolicy,
    ThresholdEpochPolicy,
)
from .spec import PolicySpec, parse_policy
from .window import (
    WINDOW_POLICIES,
    AdaptiveWindowPolicy,
    StaticWindowPolicy,
)

__all__ = [
    "PolicyBase",
    "EpochPolicyBase",
    "WindowPolicyBase",
    "EpochFacts",
    "DECAY_CURVES",
    "EPOCH_POLICIES",
    "WINDOW_POLICIES",
    "FixedEpochPolicy",
    "ThresholdEpochPolicy",
    "DecayEpochPolicy",
    "GraceEpochPolicy",
    "StaticWindowPolicy",
    "AdaptiveWindowPolicy",
    "PolicySpec",
    "parse_policy",
]
