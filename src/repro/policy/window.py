"""The aggregation-window policies: static and adaptive.

``static`` is today's knob: the window is whatever the ``aggregation``
axis says, for the whole run — the bit-identical default.  ``adaptive``
lets the window move inside ``[lo, hi]`` in response to two virtual-time
facts the aggregator already computes while charging batches:

* **occupancy** — when any batch since the last tick filled its window,
  the window (not demand) was the binding constraint for that stream:
  double it (capped at ``hi``).  Any-batch rather than every-batch,
  because the aggregator also batches streams whose item population can
  never reach the window (e.g. ``free_grouped`` batches at most one item
  per same-uplink *locale*) — those would otherwise veto growth forever;
* **queueing** — when some batch's uplink queue delay exceeded its own
  marginal batching cost, the uplink is saturated enough that batch
  length is hurting latency: halve the window (floored at ``lo``).

Observations arrive from concurrent tasks (the reclamation gather/scan
paths fan out one task per uplink group), so the accumulator uses only
commutative-exact folds — integer adds and float ``max`` — under a real
(zero-virtual-cost) lock; the fold order can never change the
accumulated state.  The window itself moves only in :meth:`tick`, called
at sequential root-driven reclaim points, so the sequence of windows is
bit-identical across repeats and worker-pool sizes.
"""

from __future__ import annotations

import threading

from .base import WindowPolicyBase

__all__ = ["WINDOW_POLICIES", "StaticWindowPolicy", "AdaptiveWindowPolicy"]


class StaticWindowPolicy(WindowPolicyBase):
    """The aggregation axis as-is: one window for the whole run."""

    kind = "static"

    def spec(self) -> str:
        return "static"


class AdaptiveWindowPolicy(WindowPolicyBase):
    """Window moves in ``[lo, hi]``: grows on full batches, shrinks on
    queueing (see the module docstring for the exact rules)."""

    kind = "adaptive"
    dynamic = True

    def __init__(self, window: int, lo: int, hi: int) -> None:
        if lo < 1 or hi < lo:
            raise ValueError(
                f"adaptive window bounds require 1 <= lo <= hi, got"
                f" {lo}..{hi}"
            )
        self.lo = int(lo)
        self.hi = int(hi)
        # Start from the aggregation axis's window, clamped into bounds.
        super().__init__(min(max(int(window), self.lo), self.hi))
        self._lock = threading.Lock()
        # Commutative-exact accumulator (reset each tick).
        self._batches = 0
        self._full = 0
        self._max_delay = 0.0
        self._max_marginal = 0.0
        #: Tick-level adjustment counters (stats / tests).
        self.grows = 0
        self.shrinks = 0
        self.ticks = 0

    def observe(
        self,
        *,
        count: int,
        window: int,
        queue_delay: float,
        marginal: float,
    ) -> None:
        with self._lock:
            self._batches += 1
            if count >= window:
                self._full += 1
            if queue_delay > self._max_delay:
                self._max_delay = queue_delay
            if marginal > self._max_marginal:
                self._max_marginal = marginal

    def tick(self) -> int:
        with self._lock:
            batches = self._batches
            full = self._full
            max_delay = self._max_delay
            max_marginal = self._max_marginal
            self._batches = 0
            self._full = 0
            self._max_delay = 0.0
            self._max_marginal = 0.0
        if batches == 0:
            return self.current
        self.ticks += 1
        if max_delay > max_marginal and max_delay > 0.0:
            new = max(self.lo, self.current // 2)
            if new != self.current:
                self.shrinks += 1
                self.current = new
        elif full > 0:
            new = min(self.hi, self.current * 2)
            if new != self.current:
                self.grows += 1
                self.current = new
        return self.current

    def spec(self) -> str:
        return f"adaptive:{self.lo}..{self.hi}"


#: Registry of window-policy kinds (the valid names in axis errors).
WINDOW_POLICIES = ("static", "adaptive")
