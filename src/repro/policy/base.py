"""The policy protocol: observe virtual-time facts, decide.

Two policy families share one tiny base (:class:`PolicyBase`):

* :class:`EpochPolicyBase` — gates the *epoch-advance* attempt.  The
  reclamation managers (:class:`~repro.core.epoch_manager.EpochManager`
  and every :class:`~repro.reclaim.protocol.ReclaimerBase` scheme) call
  :meth:`EpochPolicyBase.decide` with an :class:`EpochFacts` snapshot at
  each root-driven ``try_reclaim``; a ``False`` answer defers the whole
  election/scan/drain pipeline, cost-free.
* :class:`WindowPolicyBase` — owns the aggregation window.  The
  :class:`~repro.comm.aggregation.UplinkAggregator` reads
  :attr:`WindowPolicyBase.current` when splitting batches, feeds one
  :meth:`observe` per charged batch, and folds the accumulated facts into
  a window adjustment at the sequential :meth:`tick` points.

Fact discipline
---------------
Every input a policy may consult is a **virtual-time fact**: pending
retirement counts, virtual pin timestamps, batch occupancy against the
window, and the uplink :class:`~repro.runtime.clock.ServicePoint`'s
queueing delay.  Wall-clock time, thread ids, and arrival order are
forbidden — they vary across runs and pool sizes, and any decision
derived from them would break the engine's bit-identical determinism
invariant (docs/ENGINE.md).  Accumulation inside :meth:`observe` must be
commutative-exact (integer adds, float ``max``) because concurrent tasks
may observe batches in any real-time order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "PolicyBase",
    "EpochPolicyBase",
    "WindowPolicyBase",
    "EpochFacts",
    "DECAY_CURVES",
]


#: Decay-curve shapes accepted by the ``decay`` epoch policy, mapping the
#: normalized deferral progress ``t in [0, 1]`` to a threshold fraction in
#: ``[0, 1]`` (1 = the full threshold, 0 = advance unconditionally).  All
#: three reach 0 at ``t >= 1``, so a decay policy can never defer forever.
DECAY_CURVES = ("linear", "exponential", "step")


@dataclass(frozen=True)
class EpochFacts:
    """One cost-free snapshot of reclamation state on the virtual clock.

    Built by the manager at a root-driven decision point; every field is
    a virtual-time fact (the fact discipline above).
    """

    #: The deciding task's virtual clock, seconds.
    now: float
    #: Retired-but-unfreed objects per scan unit (per locale, or per
    #: instance under the socket-shared EBR layout), ascending locale
    #: order.  Orphaned retirements (unregistered guards) append one
    #: trailing entry when present.
    pending: Tuple[int, ...]
    #: Virtual timestamp of the most recent ``pin()`` across all guards,
    #: or ``None`` when pins are not being tracked / none happened.
    last_pin: Optional[float] = None
    #: Shared-uplink traversals per distance class accumulated by this
    #: scheme's aggregated scan traffic (index = class index; empty when
    #: aggregation never batched anything).  ROADMAP's "per-distance-class
    #: crossing counts" policy input.
    crossings: Tuple[int, ...] = ()
    #: Virtual timestamp of the *oldest* still-pending retirement, or
    #: ``None`` when ages are not being tracked / nothing is pending.
    #: Tracked only when the installed policy sets ``wants_retire_times``
    #: (or full-detail tracing is on), so the default path adds zero
    #: per-retire work.
    oldest_retire: Optional[float] = None

    @property
    def max_pending(self) -> int:
        """The largest per-unit pending count (the threshold input)."""
        return max(self.pending) if self.pending else 0

    @property
    def total_pending(self) -> int:
        """Pending objects across all units."""
        return sum(self.pending)

    @property
    def oldest_age(self) -> Optional[float]:
        """Age (seconds on the virtual clock) of the oldest pending
        retirement, or ``None`` when not tracked / nothing pending."""
        if self.oldest_retire is None:
            return None
        return self.now - self.oldest_retire

    def as_dict(self) -> dict:
        """JSON-able snapshot, recorded with each traced policy decision
        (docs/OBSERVABILITY.md) so the trace shows the facts it saw."""
        return {
            "now": self.now,
            "pending": list(self.pending),
            "last_pin": self.last_pin,
            "crossings": list(self.crossings),
            "oldest_retire": self.oldest_retire,
        }


class PolicyBase:
    """Common surface of every policy: a kind name and a spec round-trip."""

    #: Family discriminator: ``"epoch"`` or ``"window"``.
    family = "base"
    #: The policy's registry name (``"fixed"``, ``"threshold"``, ...).
    kind = "base"

    def spec(self) -> str:
        """The canonical spec-string half that re-creates this policy."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.spec()!r})"


class EpochPolicyBase(PolicyBase):
    """Epoch-advance policy: should this reclaim attempt proceed?

    Subclasses implement :meth:`_should_advance`; the base class keeps the
    decision counters and the deferral streak (``decisions since the last
    allowed advance``) that the decay curve consumes.  All state mutates
    only inside :meth:`decide`, which the managers call at root-driven
    reclaim points — sequential under the workload discipline, so the
    counters are deterministic.
    """

    family = "epoch"
    #: True for the ``fixed`` policy: managers skip fact collection and
    #: the decide call entirely, keeping the default path bit-identical
    #: to (and exactly as fast as) the pre-policy engine.
    always_advance = False
    #: True when the policy consumes :attr:`EpochFacts.last_pin`; guards
    #: record pin timestamps only when a tracking policy is installed, so
    #: the other policies add zero per-pin work.
    wants_pin_times = False
    #: True when the policy consumes :attr:`EpochFacts.oldest_retire`
    #: (limbo ages); schemes record retire timestamps only when a
    #: tracking policy is installed or full-detail tracing is on, so the
    #: stock policies add zero per-retire work.
    wants_retire_times = False

    def __init__(self) -> None:
        #: Decisions that allowed the advance attempt to proceed.
        self.advances = 0
        #: Decisions that deferred it.
        self.deferrals = 0
        #: Deferrals since the last allowed advance (the decay input).
        self.streak = 0

    def decide(self, facts: EpochFacts) -> bool:
        """Record and return one advance/defer decision."""
        if self._should_advance(facts):
            self.advances += 1
            self.streak = 0
            return True
        self.deferrals += 1
        self.streak += 1
        return False

    def _should_advance(self, facts: EpochFacts) -> bool:
        raise NotImplementedError


class WindowPolicyBase(PolicyBase):
    """Aggregation-window policy: how many ops may share one traversal.

    The aggregator reads :attr:`current` on every batch split.  A static
    policy never changes it; a dynamic one (:attr:`dynamic` True)
    accumulates per-batch observations and folds them into a new window
    at each :meth:`tick`.
    """

    family = "window"
    #: True when the window may change over the run.  The aggregator
    #: activates batching when the *spec* window is open **or** the
    #: policy is dynamic (an adaptive window may open a closed spec).
    dynamic = False

    def __init__(self, window: int) -> None:
        #: The window the aggregator uses right now.
        self.current = int(window)

    def observe(
        self,
        *,
        count: int,
        window: int,
        queue_delay: float,
        marginal: float,
    ) -> None:
        """Fold one charged batch's facts (no-op for static policies).

        ``count`` ops rode a batch split at ``window``; the batch waited
        ``queue_delay`` virtual seconds at its uplink service point and
        carried ``marginal`` seconds of per-item marginal latency.  May
        be called from concurrent tasks — implementations must accumulate
        with commutative-exact folds only.
        """

    def tick(self) -> int:
        """Fold accumulated observations into the window (root-driven).

        Called at sequential reclaim points only — never concurrently —
        so the mutation is deterministic.  Returns the (possibly new)
        current window.
        """
        return self.current
