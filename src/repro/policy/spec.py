"""Policy spec strings: parse / validate / normalize / round-trip.

One spec names both policy halves, joined by ``+``::

    "fixed"                          # defaults: fixed epochs, static window
    "threshold:64"                   # epoch half only (window stays static)
    "decay:64:exponential:8"         # decay curve and horizon knobs
    "grace:0.0001"                   # virtual-seconds grace period
    "adaptive:4..64"                 # window half only (epochs stay fixed)
    "threshold:64+adaptive:4..64"    # both halves

Halves may appear in either order, each at most once.  ``parse_policy``
is the one validation surface — :class:`~repro.runtime.config.
RuntimeConfig`, the scenario specs, and the ``--policy`` CLI flag all
route through it — and :meth:`PolicySpec.spec` returns the canonical
string that parses back to an equal spec (the machine-axis round-trip
contract, shared with ``parse_topology`` / ``parse_aggregation``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from .epoch import (
    EPOCH_POLICIES,
    DecayEpochPolicy,
    EpochPolicyBase,
    FixedEpochPolicy,
    GraceEpochPolicy,
    ThresholdEpochPolicy,
)
from .window import (
    WINDOW_POLICIES,
    AdaptiveWindowPolicy,
    StaticWindowPolicy,
    WindowPolicyBase,
)

__all__ = ["PolicySpec", "parse_policy"]

#: Default knobs for bare policy kinds (``"threshold"`` == ``"threshold:64"``).
_DEFAULT_THRESHOLD = 64
_DEFAULT_GRACE = 1e-4
_DEFAULT_HORIZON = 8
_DEFAULT_ADAPTIVE = (2, 64)


@dataclass(frozen=True)
class PolicySpec:
    """The validated, normalized policy axis of one machine.

    Immutable and hashable like :class:`~repro.comm.aggregation.
    AggregationSpec`; the stateful policy *instances* are minted fresh
    per runtime by :meth:`make_epoch_policy` / :meth:`make_window_policy`
    so no decision state leaks across runs.
    """

    epoch_kind: str = "fixed"
    #: threshold/decay: the retired-count threshold N; grace: the grace
    #: period in virtual seconds; fixed: None.
    epoch_param: Optional[float] = None
    #: decay only: curve name and deferral horizon.
    decay_curve: str = "linear"
    decay_horizon: int = _DEFAULT_HORIZON
    window_kind: str = "static"
    window_lo: int = field(default=_DEFAULT_ADAPTIVE[0])
    window_hi: int = field(default=_DEFAULT_ADAPTIVE[1])

    def __post_init__(self) -> None:
        if self.epoch_kind not in EPOCH_POLICIES:
            raise ValueError(
                f"unknown epoch policy {self.epoch_kind!r}; expected one of"
                f" {list(EPOCH_POLICIES)}"
            )
        if self.window_kind not in WINDOW_POLICIES:
            raise ValueError(
                f"unknown window policy {self.window_kind!r}; expected one"
                f" of {list(WINDOW_POLICIES)}"
            )
        # Validate knobs eagerly by minting throwaway instances: the
        # constructors own the bounds checks, so spec validation and
        # instance validation can never drift apart.
        self.make_epoch_policy()
        self.make_window_policy(1)

    # ------------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """True for the bit-identical default (fixed epochs, static window)."""
        return self.epoch_kind == "fixed" and self.window_kind == "static"

    def spec(self) -> str:
        """The canonical spec string (parses back to an equal spec)."""
        parts = []
        if self.epoch_kind == "threshold":
            parts.append(f"threshold:{int(self.epoch_param)}")
        elif self.epoch_kind == "decay":
            if self.decay_curve == "linear" and self.decay_horizon == _DEFAULT_HORIZON:
                parts.append(f"decay:{int(self.epoch_param)}")
            else:
                parts.append(
                    f"decay:{int(self.epoch_param)}:{self.decay_curve}"
                    f":{self.decay_horizon}"
                )
        elif self.epoch_kind == "grace":
            parts.append(f"grace:{self.epoch_param:g}")
        if self.window_kind == "adaptive":
            parts.append(f"adaptive:{self.window_lo}..{self.window_hi}")
        return "+".join(parts) if parts else "fixed"

    # ------------------------------------------------------------------
    # instance factories
    # ------------------------------------------------------------------
    def make_epoch_policy(self) -> EpochPolicyBase:
        """Mint a fresh (stateful) epoch-advance policy instance."""
        kind = self.epoch_kind
        if kind == "fixed":
            return FixedEpochPolicy()
        if kind == "threshold":
            return ThresholdEpochPolicy(int(self.epoch_param))
        if kind == "decay":
            return DecayEpochPolicy(
                int(self.epoch_param), self.decay_curve, self.decay_horizon
            )
        return GraceEpochPolicy(float(self.epoch_param))

    def make_window_policy(self, window: int) -> WindowPolicyBase:
        """Mint a fresh window policy seeded from the aggregation axis."""
        if self.window_kind == "static":
            return StaticWindowPolicy(window)
        return AdaptiveWindowPolicy(window, self.window_lo, self.window_hi)


def _parse_epoch_half(text: str, original: Any) -> dict:
    """Parse one ``kind[:knob...]`` epoch half into PolicySpec kwargs."""
    parts = text.split(":")
    kind = parts[0]
    knobs = parts[1:]
    try:
        if kind == "fixed":
            if knobs:
                raise ValueError("'fixed' takes no parameters")
            return {"epoch_kind": "fixed"}
        if kind == "threshold":
            if len(knobs) > 1:
                raise ValueError("'threshold' takes at most one parameter")
            n = int(knobs[0]) if knobs else _DEFAULT_THRESHOLD
            return {"epoch_kind": "threshold", "epoch_param": n}
        if kind == "decay":
            if len(knobs) > 3:
                raise ValueError(
                    "'decay' takes at most three parameters (n, curve,"
                    " horizon)"
                )
            n = int(knobs[0]) if knobs else _DEFAULT_THRESHOLD
            curve = knobs[1] if len(knobs) > 1 else "linear"
            horizon = int(knobs[2]) if len(knobs) > 2 else _DEFAULT_HORIZON
            return {
                "epoch_kind": "decay",
                "epoch_param": n,
                "decay_curve": curve,
                "decay_horizon": horizon,
            }
        # grace
        if len(knobs) > 1:
            raise ValueError("'grace' takes at most one parameter")
        g = float(knobs[0]) if knobs else _DEFAULT_GRACE
        return {"epoch_kind": "grace", "epoch_param": g}
    except ValueError as exc:
        raise ValueError(
            f"bad policy spec {original!r}: {exc}"
        ) from None


def _parse_window_half(text: str, original: Any) -> dict:
    """Parse one ``static`` / ``adaptive:lo..hi`` window half."""
    parts = text.split(":")
    kind = parts[0]
    knobs = parts[1:]
    try:
        if kind == "static":
            if knobs:
                raise ValueError("'static' takes no parameters")
            return {"window_kind": "static"}
        # adaptive
        if len(knobs) > 1:
            raise ValueError("'adaptive' takes at most one lo..hi range")
        if knobs:
            lo_text, sep, hi_text = knobs[0].partition("..")
            if not sep:
                raise ValueError(
                    "'adaptive' range must be 'lo..hi' (e.g. adaptive:4..64)"
                )
            lo, hi = int(lo_text), int(hi_text)
        else:
            lo, hi = _DEFAULT_ADAPTIVE
        return {"window_kind": "adaptive", "window_lo": lo, "window_hi": hi}
    except ValueError as exc:
        raise ValueError(
            f"bad policy spec {original!r}: {exc}"
        ) from None


def parse_policy(spec: Any) -> PolicySpec:
    """Build a :class:`PolicySpec` from a declarative spec.

    Accepts a :class:`PolicySpec` (passed through), ``None`` /
    ``"default"`` (the fixed/static default), a spec string (see the
    module docstring), or a mapping with ``epoch`` / ``window`` keys each
    holding a half-spec string.  Anything else raises ``ValueError``
    listing the valid policy names — the shared machine-axis error idiom.
    """
    if isinstance(spec, PolicySpec):
        return spec
    if spec is None:
        return PolicySpec()
    if isinstance(spec, Mapping):
        doc = dict(spec)
        epoch = doc.pop("epoch", None)
        window = doc.pop("window", None)
        if doc:
            raise ValueError(
                f"unknown policy key(s) {sorted(doc)}; accepted keys are"
                f" 'epoch' and 'window'"
            )
        kwargs: dict = {}
        if epoch is not None:
            kwargs.update(_parse_epoch_half(str(epoch).strip().lower(), spec))
        if window is not None:
            kwargs.update(_parse_window_half(str(window).strip().lower(), spec))
        return PolicySpec(**kwargs)
    if not isinstance(spec, str):
        raise ValueError(
            f"policy spec must be a string, mapping, or PolicySpec, got"
            f" {spec!r}"
        )
    text = spec.strip().lower()
    if text in ("", "default"):
        return PolicySpec()
    kwargs = {}
    seen_epoch = seen_window = False
    for half in text.split("+"):
        half = half.strip()
        kind = half.split(":", 1)[0]
        if kind in EPOCH_POLICIES:
            if seen_epoch:
                raise ValueError(
                    f"bad policy spec {spec!r}: more than one epoch half"
                )
            seen_epoch = True
            kwargs.update(_parse_epoch_half(half, spec))
        elif kind in WINDOW_POLICIES:
            if seen_window:
                raise ValueError(
                    f"bad policy spec {spec!r}: more than one window half"
                )
            seen_window = True
            kwargs.update(_parse_window_half(half, spec))
        else:
            raise ValueError(
                f"unknown policy {kind!r}; expected one of"
                f" {list(EPOCH_POLICIES + WINDOW_POLICIES)}"
            )
    return PolicySpec(**kwargs)
