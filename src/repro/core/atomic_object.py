"""``AtomicObject``: atomic operations on (remote) class instances.

This is the paper's first contribution.  Chapel has no atomics on class
instances because an instance reference is a 128-bit *wide pointer* (64-bit
virtual address + 64 bits of locality) and network hardware offers only
64-bit atomics.  ``AtomicObject`` closes the gap with three strategies:

``compressed`` (the default for < 2**16 locales)
    Pack the 48 meaningful address bits and 16 locale bits into one 64-bit
    word (:mod:`repro.memory.compression`); plain ``read`` / ``write`` /
    ``exchange`` / ``compareAndSwap`` are then single 64-bit atomics, which
    the NIC can execute as RDMA under ``ugni`` — the scalable fast path of
    Figure 3.

``dcas`` (the fallback at >= 2**16 locales)
    Keep the full wide pointer and update it with a 128-bit double-word
    CAS.  Correct at any scale, but a remote DCAS is remote execution (an
    active message), never RDMA — the paper's measured demotion.

``descriptor`` (the paper's *future work*, implemented here as an extension)
    Store a 64-bit *descriptor index* into a replicated object table
    instead of the pointer itself.  64-bit network atomics work at any
    locale count; the price is table registration on first publish and a
    (cached) lookup on read.  See :class:`DescriptorTable`.

Independent of strategy, every operation has an ``ABA`` variant (suffix
``_aba`` here, ``ABA`` in the Chapel spelling, both provided) that reads or
CASes the pointer *together with* an adjacent 64-bit counter via DCAS —
defeating the ABA problem at the cost of the wide-op price.  Normal and ABA
variants may be mixed freely, as in the paper.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..errors import LocaleError, RuntimeStateError
from ..memory.address import NIL, GlobalAddress, is_nil
from ..memory.compression import (
    MAX_COMPRESSIBLE_LOCALES,
    compress,
)
from ..runtime.clock import ServicePoint
from ..runtime.context import maybe_context
from .aba import ABA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["AtomicObject", "GlobalAtomicObject", "DescriptorTable"]


class DescriptorTable:
    """Replicated object table for the descriptor-indexing extension.

    Maps 64-bit descriptors to wide pointers.  Registration writes the
    entry to the table's home locale (one PUT when remote) and bumps a
    shared counter; resolution consults a per-locale cache first and pays a
    GET from the home locale only on a miss.  This reproduces the paper's
    future-work trade: the atomic stays a 64-bit (RDMA-able) word at *any*
    locale count, while reads gain one level of indirection.
    """

    def __init__(self, runtime: "Runtime", home: int = 0) -> None:
        self._rt = runtime
        self.home = home
        self._lock = threading.Lock()
        self._next = 1  # descriptor 0 is reserved for nil
        self._table: Dict[int, GlobalAddress] = {}
        self._caches: Tuple[Dict[int, GlobalAddress], ...] = tuple(
            {} for _ in range(runtime.num_locales)
        )

    def register(self, addr: GlobalAddress) -> int:
        """Assign (or reuse) a descriptor for ``addr``; charge the PUT."""
        if is_nil(addr):
            return 0
        ctx = maybe_context()
        with self._lock:
            desc = self._next
            self._next += 1
            self._table[desc] = addr
        if ctx is not None:
            self._rt.network.write(ctx, self.home, nbytes=16)
        return desc

    def resolve(self, desc: int) -> GlobalAddress:
        """Look up a descriptor, using the calling locale's cache."""
        if desc == 0:
            return NIL
        ctx = maybe_context()
        cache = self._caches[ctx.locale_id if ctx is not None else 0]
        hit = cache.get(desc)
        if hit is not None:
            return hit
        if ctx is not None:
            self._rt.network.read(ctx, self.home, nbytes=16)
        with self._lock:
            try:
                addr = self._table[desc]
            except KeyError:
                raise RuntimeStateError(f"unknown descriptor {desc}") from None
        cache[desc] = addr
        return addr


class AtomicObject:
    """An atomic cell holding a wide pointer to a (possibly remote) object.

    Parameters
    ----------
    runtime:
        The owning runtime.
    locale:
        Home locale of the atomic cell itself (where its memory lives).
    initial:
        Initial wide pointer (default nil).
    aba_protection:
        When True (default) the adjacent 64-bit counter is maintained and
        the ``*_aba`` variants are available; when False those variants
        raise and the object is a bare 64-bit-word atomic, like the
        ``AtomicObject`` (no ABA) series in Figure 3.
    mode:
        ``"auto"`` (compressed when the runtime fits in 2**16 locales,
        DCAS otherwise), or explicitly ``"compressed"`` / ``"dcas"`` /
        ``"descriptor"``.
    """

    #: Strategies that keep the hot word 64 bits wide (RDMA-capable).
    _NARROW_MODES = ("compressed", "descriptor")

    def __init__(
        self,
        runtime: "Runtime",
        *,
        locale: int = 0,
        initial: GlobalAddress = NIL,
        aba_protection: bool = True,
        mode: str = "auto",
        name: str = "",
    ) -> None:
        if mode == "auto":
            mode = (
                "compressed"
                if runtime.num_locales < MAX_COMPRESSIBLE_LOCALES
                else "dcas"
            )
        if mode not in ("compressed", "dcas", "descriptor"):
            raise ValueError(f"unknown AtomicObject mode {mode!r}")
        self._rt = runtime
        self.home = runtime.locale(locale).id
        self.mode = mode
        self.aba_protection = bool(aba_protection)
        self.name = name
        self._lock = threading.Lock()
        #: Per-cell contention point (hot-line serialization).
        self.line = ServicePoint(name or f"atomicobject@{self.home}")
        #: Precompiled per-distance-class atomic routes for the home
        #: locale (opt_out never applies to AtomicObject), indexed by the
        #: caller's distance class via the cached distance row.
        rows = runtime.network.atomic_class_routes(self.home)
        self._narrow_routes = rows[0]
        self._wide_routes = rows[2]
        self._dist = runtime.network.distance_row(self.home)
        self._addr: GlobalAddress = initial
        self._count = 0
        self._descriptors: Optional[DescriptorTable] = (
            DescriptorTable(runtime, home=self.home) if mode == "descriptor" else None
        )
        if mode == "descriptor":
            self._desc_of_current = self._descriptors.register(initial)
        if mode == "compressed":
            # Validate eagerly: a runtime too large for compression must
            # use dcas/descriptor — matching the paper's fallback rule.
            if runtime.num_locales >= MAX_COMPRESSIBLE_LOCALES:
                raise LocaleError(
                    "compressed mode requires fewer than 2**16 locales;"
                    " use mode='dcas' or mode='descriptor'"
                )
            compress(initial)  # raises if not representable

    # ------------------------------------------------------------------
    # charging helpers
    # ------------------------------------------------------------------
    @property
    def _narrow(self) -> bool:
        return self.mode in self._NARROW_MODES

    def _charge(self, *, wide: bool) -> None:
        ctx = maybe_context()
        if ctx is not None and ctx.runtime is self._rt:
            route = (self._wide_routes if wide else self._narrow_routes)[
                self._dist[ctx.locale_id]
            ]
            self._rt.network.charge_atomic(ctx, self.line, route)

    def _validate(self, addr: GlobalAddress) -> GlobalAddress:
        if not isinstance(addr, GlobalAddress):
            raise TypeError(
                f"AtomicObject holds GlobalAddress values, got {type(addr).__name__}"
            )
        if self.mode == "compressed":
            compress(addr)  # enforce representability (raises otherwise)
        return addr

    # ------------------------------------------------------------------
    # normal (64-bit word) operations
    # ------------------------------------------------------------------
    def read(self) -> GlobalAddress:
        """Atomically load the wide pointer.

        Narrow modes pay one 64-bit atomic (RDMA-able); ``dcas`` mode pays
        the wide price (a 128-bit load is a DCAS on x86).
        """
        self._charge(wide=not self._narrow)
        with self._lock:
            addr = self._addr
        if self.mode == "descriptor":
            # A descriptor read resolves through the (cached) table.
            self._descriptors.resolve(self._desc_of_current_locked())
        return addr

    def _desc_of_current_locked(self) -> int:
        with self._lock:
            return self._desc_of_current

    def write(self, addr: GlobalAddress) -> None:
        """Atomically store a new wide pointer."""
        addr = self._validate(addr)
        desc = (
            self._descriptors.register(addr) if self.mode == "descriptor" else None
        )
        self._charge(wide=not self._narrow)
        with self._lock:
            self._addr = addr
            if desc is not None:
                self._desc_of_current = desc

    def exchange(self, addr: GlobalAddress) -> GlobalAddress:
        """Atomically store ``addr``; return the previous pointer."""
        addr = self._validate(addr)
        desc = (
            self._descriptors.register(addr) if self.mode == "descriptor" else None
        )
        self._charge(wide=not self._narrow)
        with self._lock:
            old = self._addr
            self._addr = addr
            if desc is not None:
                self._desc_of_current = desc
            return old

    def compare_and_swap(
        self, expected: GlobalAddress, desired: GlobalAddress
    ) -> bool:
        """CAS on the pointer word alone (no counter check).

        Subject to the ABA problem by design — this is the fast path; use
        :meth:`compare_and_swap_aba` when recycling is possible.
        """
        desired = self._validate(desired)
        desc = (
            self._descriptors.register(desired)
            if self.mode == "descriptor"
            else None
        )
        self._charge(wide=not self._narrow)
        with self._lock:
            if self._addr == expected:
                self._addr = desired
                if desc is not None:
                    self._desc_of_current = desc
                return True
            return False

    def compare_exchange(
        self, expected: GlobalAddress, desired: GlobalAddress
    ) -> Tuple[bool, GlobalAddress]:
        """CAS returning ``(success, observed_pointer)``."""
        desired = self._validate(desired)
        desc = (
            self._descriptors.register(desired)
            if self.mode == "descriptor"
            else None
        )
        self._charge(wide=not self._narrow)
        with self._lock:
            observed = self._addr
            if observed == expected:
                self._addr = desired
                if desc is not None:
                    self._desc_of_current = desc
                return True, observed
            return False, observed

    # ------------------------------------------------------------------
    # ABA-protected (128-bit) operations
    # ------------------------------------------------------------------
    def _require_aba(self) -> None:
        if not self.aba_protection:
            raise RuntimeStateError(
                "this AtomicObject was created with aba_protection=False"
            )

    def read_aba(self) -> ABA[GlobalAddress]:
        """Atomically load pointer *and* counter (a 128-bit read)."""
        self._require_aba()
        self._charge(wide=True)
        with self._lock:
            return ABA(self._addr, self._count)

    def write_aba(self, addr: GlobalAddress) -> None:
        """Store ``addr`` and bump the counter as one 128-bit write."""
        self._require_aba()
        addr = self._validate(addr)
        self._charge(wide=True)
        with self._lock:
            self._addr = addr
            self._count += 1

    def exchange_aba(self, addr: GlobalAddress) -> ABA[GlobalAddress]:
        """Swap in ``addr`` (counter bumped); return the previous snapshot."""
        self._require_aba()
        addr = self._validate(addr)
        self._charge(wide=True)
        with self._lock:
            old = ABA(self._addr, self._count)
            self._addr = addr
            self._count += 1
            return old

    def compare_and_swap_aba(
        self, expected: ABA[GlobalAddress], desired: GlobalAddress
    ) -> bool:
        """DCAS: succeed only if pointer *and* counter still match.

        The counter is incremented on success, so a recycled address can
        never satisfy a stale snapshot — the ABA defeat from the paper.
        """
        self._require_aba()
        desired = self._validate(desired)
        self._charge(wide=True)
        with self._lock:
            if self._addr == expected.value and self._count == expected.count:
                self._addr = desired
                self._count += 1
                return True
            return False

    # Chapel-style aliases (paper Listing 1 spellings).
    readABA = read_aba
    writeABA = write_aba
    exchangeABA = exchange_aba
    compareAndSwapABA = compare_and_swap_aba
    compareAndSwap = compare_and_swap

    # ------------------------------------------------------------------
    def peek(self) -> GlobalAddress:
        """Cost-free load (tests only)."""
        return self._addr

    def reset_measurements(self) -> None:
        """Zero the cell's contention bookkeeping."""
        self.line.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AtomicObject(home={self.home}, mode={self.mode},"
            f" aba={self.aba_protection}, addr={self._addr!r})"
        )


#: The paper's name for the distributed variant; identical type here.
GlobalAtomicObject = AtomicObject
