"""The paper's contributions: atomic objects and distributed EBR.

* :class:`~repro.core.atomic_object.AtomicObject` (alias
  ``GlobalAtomicObject``) — atomics on wide pointers via pointer
  compression, with DCAS fallback and the descriptor-table extension.
* :class:`~repro.core.local_atomic_object.LocalAtomicObject` — the
  shared-memory-only variant.
* :class:`~repro.core.aba.ABA` — the (value, counter) snapshot defeating
  the ABA problem.
* :class:`~repro.core.epoch_manager.EpochManager` /
  :class:`~repro.core.local_epoch_manager.LocalEpochManager` — epoch-based
  reclamation for distributed / shared memory.
* :class:`~repro.core.limbo_list.LimboList` — the wait-free deferred-free
  list (paper Listing 2).
* :class:`~repro.core.token.Token` — per-task registration handles.
"""

from .aba import ABA
from .atomic_object import AtomicObject, DescriptorTable, GlobalAtomicObject
from .epoch_manager import EpochManager, EpochManagerStats
from .limbo_list import LimboList, LimboNode, NodePool
from .local_atomic_object import LocalAtomicObject
from .local_epoch_manager import LocalEpochManager
from .privatization import PrivatizedObject, UnprivatizedProxy
from .token import Token, TokenAllocatedList, TokenFreeList

__all__ = [
    "ABA",
    "AtomicObject",
    "GlobalAtomicObject",
    "LocalAtomicObject",
    "DescriptorTable",
    "EpochManager",
    "LocalEpochManager",
    "EpochManagerStats",
    "LimboList",
    "LimboNode",
    "NodePool",
    "Token",
    "TokenFreeList",
    "TokenAllocatedList",
    "PrivatizedObject",
    "UnprivatizedProxy",
]
