"""``LocalEpochManager``: the shared-memory-optimized EBR variant.

Functionally the paper's ``LocalEpochManager``: same token / limbo-list /
3-epoch machinery as :class:`~repro.core.epoch_manager.EpochManager`, but

* there is exactly **one** instance, on the creating locale — no
  privatization table, no per-locale fan-out;
* there is **no global epoch object** — the locale epoch *is* the epoch,
  so ``try_reclaim`` never leaves the locale (no coforall, no network
  flags);
* remote objects are **not** considered: deferring a remote address is an
  error (the paper's variant simply doesn't handle them), so reclamation
  is always a purely local bulk free.

Use it for structures confined to one locale; the speedup over the
distributed manager on single-locale workloads is itself an ablation bench
(`benchmarks/bench_ablation_local_manager.py`).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional

from ..atomics.integer import AtomicBool, AtomicUInt64
from ..errors import EpochManagerError, TokenStateError
from .epoch_manager import EPOCH_CYCLE, EpochManagerStats
from .limbo_list import LimboList, NodePool
from .token import Token, TokenAllocatedList, TokenFreeList

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["LocalEpochManager"]


class LocalEpochManager:
    """Single-locale epoch-based reclamation (no distributed state)."""

    def __init__(self, runtime: "Runtime", *, locale: Optional[int] = None) -> None:
        from ..runtime.context import maybe_context

        if locale is None:
            ctx = maybe_context()
            locale = ctx.locale_id if ctx is not None else 0
        self.runtime = runtime
        self.locale_id = runtime.locale(locale).id
        #: Locales allowed to use tokens of this manager (Token API).
        self.home_locales = frozenset((self.locale_id,))
        #: The (only) epoch counter; opted out of network atomics.
        self.locale_epoch = AtomicUInt64(
            runtime, self.locale_id, 1, name=f"lem_epoch@{self.locale_id}", opt_out=True
        )
        self.is_setting_epoch = AtomicBool(
            runtime, self.locale_id, False, name=f"lem_flag@{self.locale_id}", opt_out=True
        )
        self.pool = NodePool(runtime, self.locale_id)
        self.limbo_lists: List[LimboList] = [
            LimboList(runtime, self.locale_id, self.pool, name=f"lem_limbo{e}")
            for e in range(1, EPOCH_CYCLE + 1)
        ]
        self.free_tokens = TokenFreeList(runtime, self.locale_id)
        self.allocated_tokens = TokenAllocatedList(runtime, self.locale_id)
        self._token_seq = 0
        self._token_seq_lock = threading.Lock()
        self.stats = EpochManagerStats()
        self._destroyed = False
        #: Token compatibility shims (Token expects a manager-instance API).
        self.manager = self
        self.deferred_count = 0
        #: Epoch policy (docs/POLICY.md).  Tokens consult
        #: ``policy.wants_pin_times``; the single-locale manager itself
        #: keeps the fixed cadence — policies drive the *distributed*
        #: reclaim paths, which this helper has none of.
        self.policy = runtime.config.resolved_policy().make_epoch_policy()
        #: Flight-recorder hooks (docs/OBSERVABILITY.md): tokens read
        #: these through the same instance interface the distributed
        #: manager exposes, so limbo-age facts and retire events work
        #: identically on the single-locale path.
        self._full = getattr(runtime, "_full_tracer", None)
        self._track_ages = self.policy.wants_retire_times or self._full is not None
        self.slot_retire_vt: List[Optional[float]] = [None] * EPOCH_CYCLE
        self.retire_vt_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._destroyed:
            raise EpochManagerError("LocalEpochManager used after destroy()")

    def make_token(self) -> Token:
        """(Token-machinery hook) create and link a fresh token."""
        with self._token_seq_lock:
            tid = self._token_seq
            self._token_seq += 1
        token = Token(self, tid)  # Token only needs the instance interface
        self.allocated_tokens.push(token)
        return token

    def register(self) -> Token:
        """Obtain a token; caller must be on the manager's locale."""
        self._check_alive()
        from ..runtime.context import current_context

        ctx = current_context()
        if ctx.locale_id != self.locale_id:
            raise TokenStateError(
                f"LocalEpochManager on locale {self.locale_id} cannot register"
                f" a task on locale {ctx.locale_id}; use EpochManager"
            )
        token = self.free_tokens.pop()
        if token is None:
            token = self.make_token()
        else:
            token._registered = True
        return token

    # ------------------------------------------------------------------
    def try_reclaim(self) -> bool:
        """Advance the local epoch if every local token allows it.

        Entirely locale-local: one flag, one scan over this locale's
        tokens, one limbo-list drain, one bulk free.
        """
        self._check_alive()
        self.stats.inc("reclaim_attempts")
        if self.is_setting_epoch.test_and_set():
            self.stats.inc("elections_lost_local")
            return False
        try:
            this_epoch = self.locale_epoch.read()
            for token in self.allocated_tokens:
                e = token.local_epoch.read()
                if e != 0 and e != this_epoch:
                    self.stats.inc("scans_unsafe")
                    return False
            new_epoch = (this_epoch % EPOCH_CYCLE) + 1
            self.locale_epoch.write(new_epoch)
            freed = self._drain([new_epoch % EPOCH_CYCLE])
            self.stats.inc("advances")
            self.stats.inc("objects_reclaimed", freed)
            return True
        finally:
            self.is_setting_epoch.clear()

    tryReclaim = try_reclaim

    def _drain(self, indices: List[int]) -> int:
        """Drain the given limbo lists; everything must be local."""
        offsets: List[int] = []
        for idx in indices:
            for addr in self.limbo_lists[idx].drain():
                if addr.locale != self.locale_id:
                    raise TokenStateError(
                        "LocalEpochManager does not support remote objects;"
                        f" got an address on locale {addr.locale}"
                    )
                offsets.append(addr.offset)
        if offsets:
            return self.runtime.free_bulk(self.locale_id, offsets)
        return 0

    def clear(self) -> int:
        """Reclaim everything (caller guarantees quiescence)."""
        self._check_alive()
        freed = self._drain(list(range(EPOCH_CYCLE)))
        self.stats.inc("objects_reclaimed", freed)
        return freed

    def destroy(self) -> None:
        """Final clear; further use raises."""
        if self._destroyed:
            return
        self.clear()
        self._destroyed = True

    def current_epoch(self) -> int:
        """Cost-free read of the epoch (tests only)."""
        return self.locale_epoch.peek()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LocalEpochManager(locale={self.locale_id},"
            f" epoch={self.current_epoch()})"
        )
