"""``EpochManager``: lock-free Epoch-Based Reclamation for distributed memory.

The paper's second contribution.  One privatized instance lives on every
locale; each instance owns

* a cached copy of the global epoch (``locale_epoch``),
* three limbo lists — one per possible epoch in the 3-epoch cycle
  {1, 2, 3} — fed by a shared node-recycling pool,
* the token free/allocated lists for tasks registering on that locale,
* a per-locale election flag (``is_setting_epoch``).

A single *global epoch* object (an atomic epoch number plus a global
election flag) lives on the creating locale and is the only piece of
distributed shared state; everything else is locale-private, which is what
keeps pin/unpin/defer at CPU-atomic cost (Figure 7's flat curve).

``try_reclaim`` follows the paper's Listing 4 step for step:

1. **Election** — ``testAndSet`` the local flag (losers leave instantly:
   someone on this locale is already trying), then the global flag (losers
   clear their local flag and leave).  First-come-first-served election
   keeps the global-epoch locale from being swamped by redundant requests.
2. **Scan** — a ``coforall`` over locales checks every allocated token:
   any token pinned in an epoch other than the current one vetoes.
3. **Advance** — write ``(e % 3) + 1`` to the global epoch, then on every
   locale: refresh the cached epoch, drain the *oldest* limbo list (the
   epoch two advances back — its objects were logically removed before all
   currently-possible pins began), and **scatter** the dead objects by
   owning locale.
4. **Bulk delete** — every locale gathers the scatter entries destined for
   it (one bulk transfer per source locale) and frees them as one batch,
   instead of one remote free per object.

``clear`` drains *all* lists unconditionally and requires the caller to
guarantee quiescence (its documented contract, as in the paper).

Non-blocking character: no step waits on another task — election losers
return immediately, the scan reads token slots without acquiring anything,
and a failed advance is simply reported as ``False``.  A task that dies
while pinned blocks advancement forever (the known EBR liveness caveat) but
never blocks other tasks' operations.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..atomics.integer import AtomicBool, AtomicUInt64
from ..errors import EpochManagerError
from ..memory.address import GlobalAddress
from ..runtime.context import current_context
from .limbo_list import LimboList, NodePool
from .privatization import PrivatizedObject, replicate_coherent
from .token import Token, TokenAllocatedList, TokenFreeList

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["EpochManager", "EpochManagerStats", "EPOCH_CYCLE"]

#: Default epoch cycle: epochs run 1 -> 2 -> 3 -> 1 (0 = "not in any
#: epoch"), matching the paper's three limbo lists.  A manager can be
#: created with ``epoch_cycle=4`` to hold objects one extra advance —
#: closing the mid-advance stale-cache window analysed in DESIGN.md §6b at
#: the cost of one more limbo list and one epoch of extra memory residency.
EPOCH_CYCLE = 3


class EpochManagerStats:
    """Aggregate counters for one manager (tests & EXPERIMENTS.md tables).

    Striped like :class:`~repro.comm.counters.CommDiagnostics`: every real
    thread owns a private counter row, so :meth:`inc` on the ``tryReclaim``
    hot path is a plain list increment — no lock, exact counts.  Reads
    (the ``advances`` etc. attributes, implemented as aggregating
    properties) sum the stripes under a lock; they are diagnostic-time
    operations, not hot-path ones.
    """

    FIELDS = (
        "reclaim_attempts",
        "elections_lost_local",
        "elections_lost_global",
        "scans_unsafe",
        "advances",
        "objects_reclaimed",
        # Reclaim attempts deferred by the epoch-advance policy before
        # the election (docs/POLICY.md).  Always zero under the default
        # ``fixed`` policy.
        "policy_deferrals",
        # Uplink-aware traversal diagnostics (docs/AGGREGATION.md):
        # aggregated messages issued and shared-uplink traversals paid by
        # the scan/drain/gather phases.  Zero under the legacy (flat /
        # aggregation-off) paths.
        "scan_batches",
        "uplink_crossings",
    )

    __slots__ = ("_stripes", "_lock", "_tls")

    def __init__(self) -> None:
        self._stripes: List[List[int]] = []
        self._lock = threading.Lock()
        self._tls = threading.local()

    def _row(self) -> List[int]:
        """This thread's stripe (created and registered on first use)."""
        try:
            return self._tls.row
        except AttributeError:
            row = [0] * len(self.FIELDS)
            with self._lock:
                self._stripes.append(row)
            self._tls.row = row
            return row

    def inc(self, field: str, n: int = 1) -> None:
        """Lock-free add of ``n`` to one counter (hot path)."""
        self._row()[_STAT_INDEX[field]] += n

    def _get(self, index: int) -> int:
        with self._lock:
            return sum(row[index] for row in self._stripes)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view."""
        with self._lock:
            totals = [0] * len(self.FIELDS)
            for row in self._stripes:
                for i, v in enumerate(row):
                    totals[i] += v
        return dict(zip(self.FIELDS, totals))


_STAT_INDEX = {name: i for i, name in enumerate(EpochManagerStats.FIELDS)}

# Each counter is also readable as an attribute (``stats.advances``),
# aggregating all stripes on access.
for _i, _name in enumerate(EpochManagerStats.FIELDS):
    setattr(
        EpochManagerStats,
        _name,
        property(lambda self, _i=_i: self._get(_i)),
    )
del _i, _name


class _GlobalEpoch:
    """The single distributed object: epoch number + global election flag."""

    def __init__(self, runtime: "Runtime", home: int) -> None:
        self.home = home
        #: The authoritative epoch, a true network atomic (remote locales
        #: read and CAS it during reclamation).
        self.epoch = AtomicUInt64(runtime, home, 1, name=f"global_epoch@{home}")
        #: Global election flag (Listing 4's `global_epoch.is_setting_epoch`).
        self.is_setting_epoch = AtomicBool(
            runtime, home, False, name=f"global_setting@{home}"
        )


class _EpochManagerInstance:
    """The privatized per-locale instance (never touched remotely)."""

    def __init__(
        self,
        manager: "EpochManager",
        runtime: "Runtime",
        locale_id: int,
        cycle: int = EPOCH_CYCLE,
        home_locales: "Optional[Sequence[int]]" = None,
    ) -> None:
        self.manager = manager
        self.runtime = runtime
        self.locale_id = locale_id
        self.cycle = cycle
        #: Locales served by this instance: just ``locale_id`` in the
        #: per-locale (legacy) layout, the whole CPU-coherence domain in
        #: the socket-shared mode (docs/AGGREGATION.md).  Tokens may be
        #: used from any of these.
        self.home_locales = (
            frozenset((locale_id,))
            if home_locales is None
            else frozenset(home_locales)
        )
        shared = len(self.home_locales) > 1
        self.shared = shared
        #: Locale-private cache of the global epoch (opted out of network
        #: atomics: only local tasks and locally-running reclaim code read it).
        self.locale_epoch = AtomicUInt64(
            runtime, locale_id, 1, name=f"locale_epoch@{locale_id}", opt_out=True
        )
        #: Per-locale election flag.
        self.is_setting_epoch = AtomicBool(
            runtime, locale_id, False, name=f"local_setting@{locale_id}", opt_out=True
        )
        #: Shared recycling pool for the three limbo lists.  The socket-
        #: shared mode runs *without* recycling: producers on several
        #: locales feed one list, and a pool ``get`` would be a CAS loop
        #: over concurrently-mutated state — a charged, schedule-dependent
        #: retry count (see the LimboList docstring).
        self.pool = None if shared else NodePool(runtime, locale_id)
        #: One limbo list per epoch in the cycle (index = epoch - 1).
        self.limbo_lists: List[LimboList] = [
            LimboList(runtime, locale_id, self.pool, name=f"limbo{e}@{locale_id}")
            for e in range(1, cycle + 1)
        ]
        self.free_tokens = TokenFreeList(runtime, locale_id)
        self.allocated_tokens = TokenAllocatedList(runtime, locale_id)
        self._token_seq = 0
        self._token_seq_lock = threading.Lock()
        #: Objects deferred through tokens on this locale (diagnostic).
        self.deferred_count = 0
        #: Oldest retire virtual time per limbo slot (None = empty),
        #: maintained only while the manager tracks limbo ages
        #: (``EpochManager._track_ages``); cleared when the slot drains.
        self.slot_retire_vt: List[Optional[float]] = [None] * cycle
        self.retire_vt_lock = threading.Lock()

    def make_token(self) -> Token:
        """Create a brand-new token and link it into the allocated list."""
        with self._token_seq_lock:
            tid = self._token_seq
            self._token_seq += 1
        token = Token(self, tid)
        self.allocated_tokens.push(token)
        return token


class EpochManager(PrivatizedObject):
    """Distributed, privatized, lock-free epoch-based memory reclamation.

    Parameters
    ----------
    runtime:
        The simulated PGAS machine.
    use_election:
        Ablation hook: when False, ``try_reclaim`` skips the
        first-come-first-served flags and every caller proceeds to the
        global scan (the paper's design rationale in reverse).
    use_scatter:
        Ablation hook: when False, reclamation frees each dead object
        individually from the draining locale (remote objects then cost a
        round trip *each* instead of riding one bulk transfer).
    home:
        Locale holding the global epoch object (defaults to the creating
        task's locale, locale 0 outside a task).
    epoch_cycle:
        Number of epochs in the cycle (and limbo lists per locale).  The
        paper's design — and the default — is 3; ``4`` holds objects one
        extra advance, closing the mid-advance stale-locale-cache window
        (DESIGN.md §6b) at the cost of extra memory residency.
    policy:
        Epoch-advance policy (docs/POLICY.md): a policy spec accepted by
        :func:`repro.policy.parse_policy`, or ``None`` (the default) to
        use the runtime's configured policy axis.  Non-``fixed`` policies
        gate ``try_reclaim`` on virtual-time facts *before* the election,
        so a deferred attempt costs zero virtual time.
    share_coherent:
        Socket-shared mode (docs/AGGREGATION.md): one privatized instance
        per CPU-coherence domain (via :func:`~repro.core.privatization.
        replicate_coherent`) instead of per locale — socket siblings share
        limbo lists and the locale-epoch cache, trading a little line
        contention for fewer instances to scan and drain (fewer uplink
        crossings).  ``None`` (the default) resolves automatically: on
        when the runtime's aggregation window is open *and* the topology
        has multi-locale coherence domains, off otherwise — so flat /
        aggregation-off machines keep the exact legacy layout.
    """

    def __init__(
        self,
        runtime: "Runtime",
        *,
        use_election: bool = True,
        use_scatter: bool = True,
        home: Optional[int] = None,
        epoch_cycle: int = EPOCH_CYCLE,
        policy: "Optional[object]" = None,
        share_coherent: Optional[bool] = None,
    ) -> None:
        from ..policy import parse_policy
        from ..runtime.context import maybe_context
        from .privatization import coherence_domains

        if epoch_cycle < 3:
            raise ValueError(
                "epoch_cycle must be >= 3 (two full advances of quiescence)"
            )
        if home is None:
            ctx = maybe_context()
            home = ctx.locale_id if ctx is not None else 0
        self.epoch_cycle = int(epoch_cycle)
        # The epoch-advance policy (docs/POLICY.md); resolved before the
        # per-locale instances so token construction can see whether pin
        # timestamps need tracking.
        policy_spec = (
            runtime.config.resolved_policy()
            if policy is None
            else parse_policy(policy)
        )
        self.policy = policy_spec.make_epoch_policy()
        # Flight-recorder hooks (docs/OBSERVABILITY.md): spans-level
        # recorder for policy decisions and advance/clear summaries, the
        # full-detail one for per-token retire events and per-slot drain
        # records.  Both None when tracing is off.
        self._tracer = getattr(runtime, "_tracer", None)
        self._full = getattr(runtime, "_full_tracer", None)
        #: Retire timestamps are folded per limbo slot only when an
        #: age-reading policy is installed or full tracing is on.
        self._track_ages = (
            self.policy.wants_retire_times or self._full is not None
        )
        #: Shared-uplink traversals folded per distance class — the
        #: :attr:`~repro.policy.EpochFacts.crossings` policy input.
        self._crossings_by_class: Dict[int, int] = {}
        self.global_epoch = _GlobalEpoch(runtime, runtime.locale(home).id)
        self.use_election = bool(use_election)
        self.use_scatter = bool(use_scatter)
        self.stats = EpochManagerStats()
        self._destroyed = False
        domains = coherence_domains(runtime)
        multi_locale_domains = len(set(domains)) < runtime.num_locales
        if share_coherent is None:
            share_coherent = (
                runtime.network.aggregator.spec.enabled and multi_locale_domains
            )
        #: True when instances are shared per coherence domain (a domain
        #: of one locale shares nothing, so sharing degenerates to the
        #: legacy layout and is reported off).
        self.share_coherent = bool(share_coherent) and multi_locale_domains
        if self.share_coherent:
            members: Dict[int, List[int]] = {}
            for lid, dom in enumerate(domains):
                members.setdefault(dom, []).append(lid)

            def make_instance(lid: int) -> _EpochManagerInstance:
                return _EpochManagerInstance(
                    self,
                    runtime,
                    lid,
                    cycle=self.epoch_cycle,
                    home_locales=members[domains[lid]],
                )

            instances = replicate_coherent(runtime, make_instance)
        else:
            instances = [
                _EpochManagerInstance(self, runtime, lid, cycle=self.epoch_cycle)
                for lid in range(runtime.num_locales)
            ]
        #: Unique instance home locales, ascending (the scan/drain units).
        self._instance_lids: "tuple" = tuple(
            sorted({inst.locale_id for inst in instances})
        )
        super().__init__(runtime, instances)
        self._plan = self._build_plan()

    # ------------------------------------------------------------------
    # uplink-aware traversal plan
    # ------------------------------------------------------------------
    def _build_plan(self):
        """The domain-ordered traversal plan, or ``None`` for legacy.

        Active when the socket-shared layout is on or the aggregation
        window is open on a machine with shared uplinks; ``None`` —
        meaning every scan/drain path runs the exact legacy
        one-task-per-locale shape — otherwise.  Each entry is
        ``(representative locale, instance locales, all locales)`` for
        one uplink group, groups in ascending group order: the scan
        spawns one task per *group* (crossing each shared uplink once)
        which then walks its group's instances over the intra-node
        fabric.
        """
        rt = self._rt
        if not (self.share_coherent or rt.network.aggregator.active):
            return None
        topo = rt.network.topology
        groups: Dict[int, List[int]] = {}
        for lid in range(rt.num_locales):
            groups.setdefault(topo.uplink_group(lid), []).append(lid)
        inst_set = set(self._instance_lids)
        plan = []
        for g in sorted(groups):
            all_lids = tuple(sorted(groups[g]))
            inst_lids = tuple(lid for lid in all_lids if lid in inst_set)
            plan.append((all_lids[0], inst_lids, all_lids))
        return tuple(plan)

    def _note_traversal(self) -> None:
        """Count the uplink crossings of one domain-ordered coforall."""
        net = self._rt.network
        src = current_context().locale_id
        crossings = 0
        for rep, _insts, _all in self._plan:
            dclass = net.distance_row(rep)[src]
            if net.topology.classes[dclass].shared_uplink:
                crossings += 1
                # Per-class crossing facts (EpochFacts.crossings); called
                # from the root after joins, so the fold is sequential.
                fold = self._crossings_by_class
                fold[dclass] = fold.get(dclass, 0) + 1
        if crossings:
            self.stats.inc("uplink_crossings", crossings)

    def _fold_class_crossings(self, counters) -> None:
        """Fold one aggregated gather's per-class batch crossings
        (root-driven, after the coforall joins)."""
        by_class = counters.by_class
        if not by_class:
            return
        classes = self._rt.network.topology.classes
        fold = self._crossings_by_class
        for dclass, n in by_class.items():
            if classes[dclass].shared_uplink:
                fold[dclass] = fold.get(dclass, 0) + n

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._destroyed:
            raise EpochManagerError("EpochManager used after destroy()")

    def register(self) -> Token:
        """Obtain a token on the calling task's locale.

        Pops the locale's free list (lock-free) or creates a fresh token.
        The token starts *unpinned*; it may be reused for many operations
        before :meth:`Token.unregister`.
        """
        self._check_alive()
        inst: _EpochManagerInstance = self.get_privatized_instance()
        token = inst.free_tokens.pop()
        if token is None:
            token = inst.make_token()
        else:
            token._registered = True
        return token

    # ------------------------------------------------------------------
    # reclamation
    # ------------------------------------------------------------------
    def try_reclaim(self) -> bool:
        """Attempt to advance the epoch and reclaim the oldest limbo lists.

        Returns True iff the epoch advanced (and reclamation ran).  Safe to
        call from any task at any time; losers of the election (or an
        unsafe scan) return quickly without blocking anyone — the method's
        lock-freedom is what keeps the manager from weakening the
        guarantees of structures built on it.
        """
        self._check_alive()
        inst: _EpochManagerInstance = self.get_privatized_instance()
        self.stats.inc("reclaim_attempts")

        # Epoch-advance policy gate (docs/POLICY.md): a non-fixed policy
        # may defer the whole attempt on virtual-time facts, before the
        # election — no flags touched, zero virtual cost.  The default
        # ``fixed`` policy short-circuits here without computing facts,
        # keeping the legacy path bit-identical.
        pol = self.policy
        if not pol.always_advance:
            facts = self._policy_facts()
            advance = pol.decide(facts)
            tr = self._tracer
            if tr is not None:
                tr.policy_decision(
                    pol.kind,
                    "advance" if advance else "defer",
                    facts.now,
                    facts.as_dict(),
                )
            if not advance:
                self.stats.inc("policy_deferrals")
                self._rt.network.aggregator.policy_tick()
                return False

        if self.use_election:
            # Listing 4 lines 2-6: local flag first, then the global flag.
            if inst.is_setting_epoch.test_and_set():
                self.stats.inc("elections_lost_local")
                return False
            if self.global_epoch.is_setting_epoch.test_and_set():
                inst.is_setting_epoch.clear()
                self.stats.inc("elections_lost_global")
                return False

        try:
            advanced = self._scan_and_advance()
        finally:
            if self.use_election:
                self.global_epoch.is_setting_epoch.clear()
                inst.is_setting_epoch.clear()
        # Window-policy tick: the election winner's reclaim is a
        # sequential root-driven point under the workload discipline, so
        # folding batch observations into the window here is
        # deterministic (a no-op for static windows).
        self._rt.network.aggregator.policy_tick()
        return advanced

    tryReclaim = try_reclaim

    def _policy_facts(self):
        """Cost-free :class:`~repro.policy.EpochFacts` snapshot.

        Pending counts walk the limbo chains with plain peeks (exact:
        every retirement is linked before ``defer_delete`` returns); the
        last-pin timestamp max-folds the per-token records, which only
        exist while a pin-tracking policy is installed.  Both folds are
        order-independent, so the snapshot is deterministic at the
        root-driven decision points.
        """
        from ..policy import EpochFacts
        from ..runtime.context import maybe_context

        want_pins = self.policy.wants_pin_times
        want_ages = self._track_ages
        pending = []
        last_pin: Optional[float] = None
        oldest: Optional[float] = None
        for lid in self._instance_lids:
            inst: _EpochManagerInstance = self.get_privatized_instance(lid)
            n = 0
            for lst in inst.limbo_lists:
                node = lst._head.peek()
                while node is not None:
                    n += 1
                    node = node.next
            pending.append(n)
            if want_pins:
                for token in inst.allocated_tokens:
                    t = token._last_pin_vt
                    if t is not None and (last_pin is None or t > last_pin):
                        last_pin = t
            if want_ages:
                with inst.retire_vt_lock:
                    for t_r in inst.slot_retire_vt:
                        if t_r is not None and (oldest is None or t_r < oldest):
                            oldest = t_r
        cbc = self._crossings_by_class
        crossings = (
            tuple(cbc.get(i, 0) for i in range(max(cbc) + 1)) if cbc else ()
        )
        ctx = maybe_context()
        now = ctx.clock.now if ctx is not None else 0.0
        return EpochFacts(
            now=now,
            pending=tuple(pending),
            last_pin=last_pin,
            crossings=crossings,
            oldest_retire=oldest,
        )

    def _coforall_instances(self, fn) -> None:
        """Run ``fn(instance locale)`` over every scan/drain unit.

        Legacy (no plan): one task per locale, exactly the pre-aggregation
        shape.  Domain-ordered (plan active): one task per *uplink group*
        representative — each shared uplink is crossed once per traversal
        instead of once per locale — which then walks its group's
        instances over the intra-node fabric (coherent/NIC-priced reads,
        no uplink traffic).
        """
        rt = self._rt
        plan = self._plan
        if plan is None:
            rt.coforall_locales(fn)
            return
        members = {rep: inst_lids for rep, inst_lids, _all in plan}

        def run_group(rep: int) -> None:
            for lid in members[rep]:
                fn(lid)

        rt.coforall_locales(run_group, locales=[rep for rep, _i, _a in plan])
        self._note_traversal()

    def _scan_and_advance(self) -> bool:
        """The scan + advance + drain + bulk-delete pipeline (Listing 4)."""
        rt = self._rt
        this_epoch = self.global_epoch.epoch.read()

        # -- 2. global scan: is every token quiescent or current? --------
        votes: List[bool] = [True] * rt.num_locales

        def scan_locale(lid: int) -> None:
            inst_l: _EpochManagerInstance = self.get_privatized_instance(lid)
            for token in inst_l.allocated_tokens:
                e = token.local_epoch.read()
                if e != 0 and e != this_epoch:
                    votes[lid] = False
                    break

        self._coforall_instances(scan_locale)
        if not all(votes):
            self.stats.inc("scans_unsafe")
            return False

        # -- 3. advance the global epoch ---------------------------------
        # A CAS rather than a blind write: with the election enabled there
        # is exactly one setter and the CAS always succeeds (same cost as
        # a write); with the election disabled (ablation) concurrent
        # reclaimers may race here and exactly one wins — the losers back
        # off without draining, keeping reclamation single-owner.
        cycle = self.epoch_cycle
        new_epoch = (this_epoch % cycle) + 1
        if not self.global_epoch.epoch.compare_and_swap(this_epoch, new_epoch):
            self.stats.inc("scans_unsafe")
            return False

        # The list for the epoch *after* new — the oldest in the cycle,
        # cycle-1 advances back — is the one whose objects have provably
        # quiesced: index (new % cycle).
        reclaim_index = new_epoch % cycle

        reclaimed = self._drain_and_free([reclaim_index], new_epoch=new_epoch)
        self.stats.inc("advances")
        self.stats.inc("objects_reclaimed", reclaimed)
        tr = self._tracer
        if tr is not None:
            tr.reclaim(
                "advance",
                "ebr",
                current_context().clock.now,
                epoch=new_epoch,
                freed=reclaimed,
            )
        return True

    def _drain_and_free(
        self, indices: Sequence[int], *, new_epoch: Optional[int] = None
    ) -> int:
        """Drain the given limbo-list indices on every locale and free.

        Phase A (per locale): refresh the cached epoch, pop the chains,
        group dead addresses by owning locale (the scatter list).
        Phase B (per locale): gather everything destined here — one bulk
        transfer per source locale — and free it as one batch.
        """
        rt = self._rt
        freed_total = [0] * rt.num_locales
        # Per-call scatter staging (indexed by draining locale).  Staged in
        # the reclaim call rather than on the instances so that concurrent
        # reclaims (possible only in the no-election ablation) can never
        # observe each other's half-built scatter lists.
        staged: List[Dict[int, List[int]]] = [dict() for _ in range(rt.num_locales)]

        def drain_locale(lid: int) -> None:
            inst_l: _EpochManagerInstance = self.get_privatized_instance(lid)
            if new_epoch is not None:
                inst_l.locale_epoch.write(new_epoch)
            scatter: Dict[int, List[int]] = {}
            for idx in indices:
                for addr in inst_l.limbo_lists[idx].drain():
                    scatter.setdefault(addr.locale, []).append(addr.offset)
            if self._track_ages:
                with inst_l.retire_vt_lock:
                    for idx in indices:
                        inst_l.slot_retire_vt[idx] = None
            tr = self._full
            if tr is not None:
                # Unit+slot drain record: the metrics registry matches it
                # against this unit's pending retire events to recover
                # exact limbo ages from the stream alone.  One task per
                # instance locale appends to its own per-locale buffer,
                # so emission order is deterministic.
                tr.reclaim(
                    "drain",
                    "ebr",
                    current_context().clock.now,
                    unit=tr.unit_id(inst_l),
                    slots=sorted(indices),
                    count=sum(len(v) for v in scatter.values()),
                )
            if self.use_scatter:
                staged[lid] = scatter
            else:
                # Ablation: free each object directly; remote ones pay a
                # full round trip apiece.
                n = 0
                for target, offsets in scatter.items():
                    for off in offsets:
                        rt.free(GlobalAddress(target, off))
                        n += 1
                freed_total[lid] = n

        self._coforall_instances(drain_locale)

        if self.use_scatter:
            plan = self._plan

            def gather_and_free(lid: int) -> None:
                ctx = current_context()
                mine: List[int] = []
                for src in range(rt.num_locales):
                    batch = staged[src].get(lid)
                    if batch:
                        # One bulk transfer of the address list per source.
                        rt.network.bulk(ctx, src, nbytes=8 * len(batch))
                        mine.extend(batch)
                if mine:
                    freed_total[lid] = rt.free_bulk(lid, mine)

            if plan is None:
                rt.coforall_locales(gather_and_free)
            else:
                # Domain-ordered gather: one task per uplink group pulls
                # the scatter entries for every locale in its group.
                # Sources behind a shared uplink coalesce — the address
                # lists of one source node ride one window-sized bulk
                # batch instead of one transfer per source locale.
                from ..comm.aggregation import BatchCounters

                members = {rep: all_lids for rep, _i, all_lids in plan}
                aggregator = rt.network.aggregator
                # Per-group batch counters, folded into the per-class
                # crossing facts after the join (list.append is atomic
                # under the GIL; the post-join fold is commutative adds,
                # so the result is order-independent).
                gcounters: List[BatchCounters] = []

                def gather_group(rep: int) -> None:
                    ctx = current_context()
                    counters = BatchCounters()
                    for lid in members[rep]:
                        mine: List[int] = []
                        transfers: List[tuple] = []
                        for src in range(rt.num_locales):
                            batch = staged[src].get(lid)
                            if batch:
                                transfers.append((src, 8 * len(batch)))
                                mine.extend(batch)
                        if transfers:
                            aggregator.bulk_gather(ctx, transfers, counters)
                        if mine:
                            # The free itself: the group's own locales are
                            # coherent or intra-node peers — no uplink.
                            freed_total[lid] = rt.free_bulk(lid, mine)
                    if counters.batches:
                        self.stats.inc("scan_batches", counters.batches)
                        self.stats.inc("uplink_crossings", counters.crossings)
                        gcounters.append(counters)

                rt.coforall_locales(
                    gather_group, locales=[rep for rep, _i, _a in plan]
                )
                self._note_traversal()
                for counters in gcounters:
                    self._fold_class_crossings(counters)

        return sum(freed_total)

    def clear(self) -> int:
        """Reclaim *everything* across all epochs and locales.

        Contract (from the paper): call only when no other task is
        interacting with the manager — e.g. after a ``forall`` has joined.
        Returns the number of objects freed.
        """
        self._check_alive()
        freed = self._drain_and_free(list(range(self.epoch_cycle)))
        self.stats.inc("objects_reclaimed", freed)
        tr = self._tracer
        if tr is not None:
            from ..runtime.context import maybe_context

            ctx = maybe_context()
            tr.reclaim(
                "clear",
                "ebr",
                ctx.clock.now if ctx is not None else 0.0,
                freed=freed,
            )
        # ``clear`` is a sequential quiescent point by contract — a valid
        # window-policy tick site (no-op for static windows).
        self._rt.network.aggregator.policy_tick()
        return freed

    # ------------------------------------------------------------------
    # lifecycle & introspection
    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Reclaim all remaining objects and drop per-locale instances."""
        if self._destroyed:
            return
        self.clear()
        self._destroyed = True
        self._drop_instances()

    def current_epoch(self) -> int:
        """Cost-free read of the global epoch (tests only)."""
        return self.global_epoch.epoch.peek()

    def instance_locales(self) -> "tuple":
        """Home locales of the distinct privatized instances, ascending.

        One entry per locale in the legacy layout; one per CPU-coherence
        domain in the socket-shared mode.  Iterating instances through
        this (rather than ``range(num_locales)``) is what keeps shared-
        mode accounting exact — a shared instance is visited once, not
        once per member locale.
        """
        return self._instance_lids

    def pending_count(self) -> int:
        """Cost-free count of objects currently in limbo (tests only)."""
        total = 0
        for lid in self._instance_lids:
            inst: _EpochManagerInstance = self.get_privatized_instance(lid)
            for lst in inst.limbo_lists:
                node = lst._head.peek()
                while node is not None:
                    total += 1
                    node = node.next
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EpochManager(epoch={self.current_epoch()},"
            f" advances={self.stats.advances})"
        )
