"""``LocalAtomicObject``: the shared-memory-only variant.

The paper's initial prototype: ignore the locality half of the wide pointer
entirely and keep a 64-bit atomic of just the virtual address.  Valid only
when every object it will ever hold lives on the *same* locale as the
atomic itself — which it enforces — in exchange for always paying CPU-atomic
prices (it "opts out" of network atomics even under ``ugni``, since no
remote agent ever touches it).

API-compatible with :class:`~repro.core.atomic_object.AtomicObject`
(including the ``*_aba`` variants, backed by a local DCAS), so shared-memory
data structures can be written once and upgraded to distributed operation by
swapping the atomic type — mirroring how the Chapel module pair is used.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Tuple

from ..errors import LocaleError, RuntimeStateError
from ..memory.address import NIL, GlobalAddress, is_nil
from ..runtime.clock import ServicePoint
from ..runtime.context import maybe_context
from .aba import ABA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["LocalAtomicObject"]


class LocalAtomicObject:
    """Atomic wide-pointer cell restricted to objects on its own locale."""

    def __init__(
        self,
        runtime: "Runtime",
        *,
        locale: int = 0,
        initial: GlobalAddress = NIL,
        aba_protection: bool = True,
        name: str = "",
    ) -> None:
        self._rt = runtime
        self.home = runtime.locale(locale).id
        self.aba_protection = bool(aba_protection)
        self.name = name
        self._lock = threading.Lock()
        #: Per-cell contention point.
        self.line = ServicePoint(name or f"localatomic@{self.home}")
        self._addr = self._validate(initial)
        self._count = 0
        #: Precompiled per-distance-class atomic routes for the home
        #: locale: narrow ops opt out of network atomics, wide ops take
        #: the DCAS rows (where opt_out is irrelevant).  Indexed by the
        #: caller's distance class via the cached distance row.
        rows = runtime.network.atomic_class_routes(self.home)
        self._narrow_routes = rows[1]
        self._wide_routes = rows[2]
        self._dist = runtime.network.distance_row(self.home)

    # ------------------------------------------------------------------
    def _validate(self, addr: GlobalAddress) -> GlobalAddress:
        if not isinstance(addr, GlobalAddress):
            raise TypeError(
                f"LocalAtomicObject holds GlobalAddress values,"
                f" got {type(addr).__name__}"
            )
        if not is_nil(addr) and addr.locale != self.home:
            raise LocaleError(
                f"LocalAtomicObject on locale {self.home} cannot hold a"
                f" pointer to locale {addr.locale}; use AtomicObject"
            )
        return addr

    def _charge(self, *, wide: bool) -> None:
        ctx = maybe_context()
        if ctx is not None and ctx.runtime is self._rt:
            # opt_out (narrow only): never a network atomic; remote use
            # (which the locale check above makes useless anyway) would
            # price as AM.
            route = (self._wide_routes if wide else self._narrow_routes)[
                self._dist[ctx.locale_id]
            ]
            self._rt.network.charge_atomic(ctx, self.line, route)

    def _require_aba(self) -> None:
        if not self.aba_protection:
            raise RuntimeStateError(
                "this LocalAtomicObject was created with aba_protection=False"
            )

    # ------------------------------------------------------------------
    # normal operations (64-bit CPU atomics)
    # ------------------------------------------------------------------
    def read(self) -> GlobalAddress:
        """Atomically load the pointer."""
        self._charge(wide=False)
        with self._lock:
            return self._addr

    def write(self, addr: GlobalAddress) -> None:
        """Atomically store a (same-locale) pointer."""
        addr = self._validate(addr)
        self._charge(wide=False)
        with self._lock:
            self._addr = addr

    def exchange(self, addr: GlobalAddress) -> GlobalAddress:
        """Atomically store ``addr``; return the previous pointer."""
        addr = self._validate(addr)
        self._charge(wide=False)
        with self._lock:
            old = self._addr
            self._addr = addr
            return old

    def compare_and_swap(
        self, expected: GlobalAddress, desired: GlobalAddress
    ) -> bool:
        """Pointer-word CAS (ABA-prone by design; see the ABA variants)."""
        desired = self._validate(desired)
        self._charge(wide=False)
        with self._lock:
            if self._addr == expected:
                self._addr = desired
                return True
            return False

    def compare_exchange(
        self, expected: GlobalAddress, desired: GlobalAddress
    ) -> Tuple[bool, GlobalAddress]:
        """CAS returning ``(success, observed_pointer)``."""
        desired = self._validate(desired)
        self._charge(wide=False)
        with self._lock:
            observed = self._addr
            if observed == expected:
                self._addr = desired
                return True, observed
            return False, observed

    # ------------------------------------------------------------------
    # ABA-protected operations (local DCAS)
    # ------------------------------------------------------------------
    def read_aba(self) -> ABA[GlobalAddress]:
        """128-bit load of (pointer, counter)."""
        self._require_aba()
        self._charge(wide=True)
        with self._lock:
            return ABA(self._addr, self._count)

    def write_aba(self, addr: GlobalAddress) -> None:
        """128-bit store; bumps the counter."""
        self._require_aba()
        addr = self._validate(addr)
        self._charge(wide=True)
        with self._lock:
            self._addr = addr
            self._count += 1

    def exchange_aba(self, addr: GlobalAddress) -> ABA[GlobalAddress]:
        """128-bit swap; returns the previous snapshot."""
        self._require_aba()
        addr = self._validate(addr)
        self._charge(wide=True)
        with self._lock:
            old = ABA(self._addr, self._count)
            self._addr = addr
            self._count += 1
            return old

    def compare_and_swap_aba(
        self, expected: ABA[GlobalAddress], desired: GlobalAddress
    ) -> bool:
        """DCAS against (pointer, counter); immune to address recycling."""
        self._require_aba()
        desired = self._validate(desired)
        self._charge(wide=True)
        with self._lock:
            if self._addr == expected.value and self._count == expected.count:
                self._addr = desired
                self._count += 1
                return True
            return False

    # Chapel-style aliases.
    readABA = read_aba
    writeABA = write_aba
    exchangeABA = exchange_aba
    compareAndSwapABA = compare_and_swap_aba
    compareAndSwap = compare_and_swap

    # ------------------------------------------------------------------
    def peek(self) -> GlobalAddress:
        """Cost-free load (tests only)."""
        return self._addr

    def reset_measurements(self) -> None:
        """Zero the cell's contention bookkeeping."""
        self.line.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalAtomicObject(home={self.home}, addr={self._addr!r})"
