"""The ``ABA`` wrapper: a 64-bit value adjacent to a 64-bit counter.

The ABA problem: thread τ1 reads pointer ``α`` from an atomic; τ2 unlinks
and frees ``α``; τ3 allocates a new node that lands at the *same* address
``α`` and installs it; τ1's compare-and-swap now succeeds even though the
structure changed completely.  The classic fix — and the one the paper
adopts, because a concurrent memory-reclamation system is exactly what is
being built (the chicken-and-egg paradox) — is to pair the pointer with a
monotonically increasing counter and update both with a double-word CAS:
address recycling cannot rewind the counter, so the stale CAS fails.

:class:`ABA` is the immutable snapshot type returned by the ``*ABA``
operation variants of :class:`~repro.core.atomic_object.AtomicObject` and
:class:`~repro.core.local_atomic_object.LocalAtomicObject`.  Like the
Chapel original (which uses the ``forwarding`` decorator), it is designed
to be used "as if it were the value it wraps": equality, hashing, truth
value and attribute forwarding all delegate sensibly.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from ..memory.address import GlobalAddress, is_nil

T = TypeVar("T")

__all__ = ["ABA"]


class ABA(Generic[T]):
    """An immutable (value, counter) snapshot from an ABA-protected atomic.

    ``value`` is normally a :class:`~repro.memory.address.GlobalAddress`
    (the object the atomic pointed at when read); ``count`` is the write
    counter at that instant.  A ``compareAndSwapABA`` succeeds only if
    *both* still match.
    """

    __slots__ = ("_value", "_count")

    def __init__(self, value: T, count: int) -> None:
        self._value = value
        self._count = int(count)

    # -- accessors ---------------------------------------------------------
    @property
    def value(self) -> T:
        """The wrapped value (usually a wide pointer)."""
        return self._value

    @property
    def count(self) -> int:
        """The ABA counter at the time of the read."""
        return self._count

    def get_object(self) -> T:
        """Paper-spelling accessor (Listing 1's ``oldHead.getObject()``)."""
        return self._value

    # Chapel-style alias.
    getObject = get_object

    # -- value semantics -----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, ABA):
            return self._value == other._value and self._count == other._count
        # Comparing against a bare value ignores the counter — the
        # "seamless forwarding" convenience from the paper.
        return bool(self._value == other)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((self._value, self._count))

    def __bool__(self) -> bool:
        """Truthiness forwards to the value; a nil pointer is falsy."""
        if isinstance(self._value, GlobalAddress):
            return not is_nil(self._value)
        return bool(self._value)

    def __getattr__(self, name: str):
        """Forward unknown attribute reads to the wrapped value.

        The analogue of Chapel's ``forwarding`` decorator: an ``ABA``
        behaves like the thing it wraps for read-only use.
        """
        return getattr(self._value, name)

    def __repr__(self) -> str:
        return f"ABA(value={self._value!r}, count={self._count})"
