"""The wait-free limbo list and its lock-free node-recycling pool.

A limbo list holds objects that were *logically* removed from a data
structure during some epoch and are waiting out their quiescence period.
The paper observes the access pattern is special — an **insertion phase**
that is fully concurrent and a **deletion phase** that drains everything at
once, and the two phases never overlap — and designs a "somewhat novel but
simple" structure around it (Listing 2):

* ``push``: take a recycled node, *one atomic exchange* on the head, then
  link ``node.next = old_head``.  No CAS loop, no retry: **wait-free**.
* ``pop_all``: *one atomic exchange* of the head with nil, handing the
  caller the entire chain: also wait-free.

The deferred ``next`` write means a concurrently-pushed chain is only
*eventually* linked; that is sound precisely because the deletion phase is
disjoint from insertions (the epoch protocol guarantees nobody drains the
list others still push to).  :meth:`LimboList.pop_all` documents — and the
test suite exercises — that contract.

Nodes are recycled through :class:`NodePool`, a Treiber stack.  In the
Chapel original the pool needs the ``ABA`` wrapper because freed nodes'
*addresses* recur; here pool nodes are Python objects whose identity is
GC-protected, so an identity-CAS suffices (the simulated-heap structures
are where ABA is a live hazard — see
:mod:`repro.structures.treiber_stack`).  Costs charged are the same either
way: one atomic per link operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, List, Optional

from ..atomics.ref import AtomicRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["LimboNode", "NodePool", "LimboList"]


class LimboNode:
    """One link of a limbo chain; recycled through :class:`NodePool`."""

    __slots__ = ("val", "next")

    def __init__(self) -> None:
        #: The deferred value (a :class:`~repro.memory.address.GlobalAddress`).
        self.val: Any = None
        #: Next node in the chain (``None`` terminates).
        self.next: Optional["LimboNode"] = None


class NodePool:
    """A lock-free Treiber stack of recycled :class:`LimboNode` objects.

    Shared by all three limbo lists of one locale's epoch-manager instance,
    so the steady-state allocation rate of the reclamation machinery itself
    is zero — deferring a deletion allocates nothing once the pool is warm.
    """

    def __init__(self, runtime: "Runtime", home: int) -> None:
        self._head = AtomicRef(runtime, home, None, name=f"nodepool@{home}")
        #: Nodes created because the pool was empty (diagnostic).
        self.allocated = 0

    def get(self, val: Any) -> LimboNode:
        """Pop a recycled node (or allocate one) and fill it with ``val``."""
        while True:
            node = self._head.read()
            if node is None:
                fresh = LimboNode()
                fresh.val = val
                self.allocated += 1  # benign race: diagnostic only
                return fresh
            if self._head.compare_and_swap(node, node.next):
                node.val = val
                node.next = None
                return node

    def put(self, node: LimboNode) -> None:
        """Return a drained node to the pool (lock-free push)."""
        node.val = None
        while True:
            head = self._head.read()
            node.next = head
            if self._head.compare_and_swap(head, node):
                return

    def drain_count(self) -> int:
        """Number of nodes currently pooled (O(n); tests only)."""
        n = 0
        node = self._head.peek()
        while node is not None:
            n += 1
            node = node.next
        return n


class LimboList:
    """Wait-free multi-producer list with bulk removal (paper Listing 2).

    ``pool=None`` runs the list without node recycling: pushes allocate a
    fresh node (no pool-head read, no CAS anywhere) and drains discard
    nodes to the garbage collector.  The socket-shared epoch-manager mode
    (docs/AGGREGATION.md) uses this: with producers on *several* locales
    feeding one list, a recycled pool's ``get`` would be a CAS loop over
    state concurrently mutated by other real threads — a charged,
    schedule-dependent retry count that breaks the engine's determinism
    contract.  Fresh allocation keeps every push exactly one charged
    exchange.
    """

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        pool: Optional[NodePool],
        name: str = "",
    ) -> None:
        self._head = AtomicRef(runtime, home, None, name=name or f"limbo@{home}")
        self._pool = pool
        self.home = home

    def push(self, val: Any) -> None:
        """Defer ``val``: recycle a node, one exchange, link behind.

        Wait-free: completes in a bounded number of steps regardless of
        contention (the pool's CAS loop is bounded by pool size in practice
        and the paper counts the structure's *publication* — the exchange —
        which never retries).
        """
        if self._pool is None:
            node = LimboNode()
            node.val = val
        else:
            node = self._pool.get(val)
        old = self._head.exchange(node)
        node.next = old

    def pop_all(self) -> Optional[LimboNode]:
        """Detach and return the whole chain (one exchange).

        Contract: callers must guarantee no concurrent ``push`` is between
        its exchange and its ``next`` link — the epoch protocol provides
        this by only draining lists two epochs old.  ``clear()`` relies on
        its stronger "no other thread is interacting" precondition.
        """
        return self._head.exchange(None)

    def drain(self) -> Iterator[Any]:
        """Pop everything and yield the values, recycling nodes.

        Without a pool, drained nodes are simply dropped (GC reclaims
        them) — no charged pool pushes.
        """
        node = self.pop_all()
        pool = self._pool
        if pool is None:
            while node is not None:
                nxt = node.next
                yield node.val
                node = nxt
            return
        while node is not None:
            nxt = node.next
            val = node.val
            pool.put(node)
            yield val
            node = nxt

    def collect(self) -> List[Any]:
        """Pop everything into a list (convenience over :meth:`drain`)."""
        return list(self.drain())

    def is_empty_snapshot(self) -> bool:
        """Cost-free emptiness check (tests only; racy by nature)."""
        return self._head.peek() is None
