"""Epoch-manager tokens: per-task handles into the reclamation protocol.

A task must *register* with the epoch manager before touching a protected
structure, obtaining a :class:`Token`; while holding one it *pins* to enter
the current epoch and *unpins* to leave it.  Between pin and unpin it may
``defer_delete`` logically-removed objects, which land in the limbo list of
the token's pinned epoch.

Two lock-free lists manage tokens, exactly as in the paper:

* a **free list** (Treiber stack) used by register/unregister, so token
  objects — and their epoch slots — are recycled rather than allocated;
* an **allocated list** (append-only push list) that ``tryReclaim`` scans
  to find whether any task is still in an old epoch.  Tokens are never
  removed from it; an unregistered token simply shows epoch 0 (quiescent).

A token is locale-bound: it lives on the locale where it was registered and
must be pinned/unpinned there (which the ``forall`` task-private intent
guarantees naturally).  Tokens support the context-manager protocol and a
``close()`` method so ``forall(..., task_init=em.register)`` unregisters
automatically when the task ends — the analogue of the paper's managed
wrapper class unregistering at scope exit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from ..atomics.integer import AtomicUInt64
from ..atomics.ref import AtomicRef
from ..errors import TokenStateError
from ..memory.address import GlobalAddress
from ..runtime.context import _tls as _context_tls
from ..runtime.context import current_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime
    from .epoch_manager import _EpochManagerInstance

__all__ = ["Token", "TokenFreeList", "TokenAllocatedList"]


class Token:
    """One task's registration with an epoch-manager instance.

    Tokens are the EBR implementation of the scheme-generic *guard
    protocol* (:mod:`repro.reclaim`): any structure or workload written
    against a guard accepts a token unchanged.  Epoch-based protection is
    region-based, so :meth:`protect` is a free no-op and
    ``needs_protect`` is False — structures skip their hazard-pointer
    validation reads entirely on the EBR path.
    """

    #: Guard-protocol flag: EBR needs no per-pointer announcements.
    needs_protect = False

    __slots__ = (
        "_inst",
        "_inst_epoch",
        "local_epoch",
        "token_id",
        "_registered",
        "_free_next",
        "_alloc_next",
        "_track_pins",
        "_last_pin_vt",
        "_track_ages",
        "_full_tracer",
    )

    def __init__(self, inst: "_EpochManagerInstance", token_id: int) -> None:
        self._inst = inst
        #: The epoch this token is pinned in; 0 = quiescent (not pinned).
        #: Opted out of network atomics: only tasks on the home locale and
        #: the reclamation scan (which runs *on* this locale) touch it.
        self.local_epoch = AtomicUInt64(
            inst.runtime,
            inst.locale_id,
            0,
            name=f"token{token_id}@{inst.locale_id}",
            opt_out=True,
        )
        self.token_id = token_id
        #: Cached reference to the instance's locale-epoch cell (pin reads
        #: it up to twice per call; skip the two-attribute chain).
        self._inst_epoch = inst.locale_epoch
        self._registered = True
        self._free_next: Optional["Token"] = None  # free-list link
        self._alloc_next: Optional["Token"] = None  # allocated-list link
        #: Pin-timestamp tracking (docs/POLICY.md): only a grace-period
        #: epoch policy reads pin times, so the per-pin store is gated on
        #: one cached bool — every other policy pays a single branch.
        self._track_pins = inst.manager.policy.wants_pin_times
        #: Virtual time of this token's most recent pin (owner-written;
        #: max-folded by the root at policy decision points).
        self._last_pin_vt: Optional[float] = None
        #: Limbo-age tracking (docs/POLICY.md, docs/OBSERVABILITY.md):
        #: gated like ``_track_pins`` on one cached bool, so the stock
        #: policies with tracing off pay a single branch per retire.
        self._track_ages = inst.manager._track_ages
        #: Full-detail flight recorder, or None (docs/OBSERVABILITY.md).
        self._full_tracer = inst.manager._full

    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        if not self._registered:
            raise TokenStateError("token has been unregistered")
        # Inline context fetch (pin/unpin hot path); current_context()
        # supplies the precise no-context error on the cold branch.
        try:
            ctx = _context_tls.ctx
        except AttributeError:
            ctx = None
        if ctx is None:
            ctx = current_context()
        # home_locales is {locale_id} for per-locale instances; under the
        # socket-shared mode (docs/AGGREGATION.md) it is the instance's
        # whole coherence domain — any socket sibling may use the token
        # (its atomics are then coherent-class, still CPU-priced).
        if ctx.locale_id not in self._inst.home_locales:
            raise TokenStateError(
                f"token registered on locale {self._inst.locale_id} used from"
                f" locale {ctx.locale_id}; register per-task on each locale"
            )

    @property
    def is_registered(self) -> bool:
        """True until :meth:`unregister` is called."""
        return self._registered

    @property
    def is_pinned(self) -> bool:
        """Cost-free pinned check (tests / assertions)."""
        return self.local_epoch.peek() != 0

    # ------------------------------------------------------------------
    def pin(self) -> None:
        """Enter the current epoch (cached per-locale; zero communication).

        Publishes the epoch to the token slot and then *re-validates* that
        the locale epoch did not advance in between — the standard EBR
        guard against the read/announce race (an advance that scanned the
        slot before the write could otherwise run ahead of a pin taken
        from a stale epoch).  The loop re-runs only when an advance lands
        in the tiny read-write window, so the common case is exactly two
        local CPU atomics.

        A long-pinned token is what *blocks* epoch advancement, so
        pin/unpin should bracket operations tightly.
        """
        self._check_usable()
        if self._track_pins:
            # Virtual-time fact for the grace epoch policy: the owning
            # task is the only writer, so no lock is needed; the root
            # max-folds across tokens at (post-join) decision points.
            self._last_pin_vt = current_context().clock.now
        tr = self._full_tracer
        if tr is not None:
            tr.guard("pin", "ebr", current_context().clock.now)
        inst_epoch = self._inst_epoch
        my_epoch = self.local_epoch
        epoch = inst_epoch.read()
        while True:
            my_epoch.write(epoch)
            current = inst_epoch.read()
            if current == epoch:
                return
            epoch = current

    def unpin(self) -> None:
        """Leave the epoch (become quiescent)."""
        self._check_usable()
        self.local_epoch.write(0)

    def defer_delete(self, addr: GlobalAddress) -> None:
        """Defer reclamation of ``addr`` to the *current* (locale) epoch.

        The object must already be *logically removed* (unreachable from
        the structure); the epoch protocol delays the physical free until
        every task that might still hold a reference has quiesced.

        Epoch choice — a subtle but load-bearing detail: the object is
        filed under the locale's **current** epoch, not the token's pinned
        epoch.  A token may legitimately remain pinned one epoch behind
        (Figure 1 allows it), and filing under that stale epoch would
        place an object removed *now* into a list only one advance from
        reclamation — freeing it while a token pinned in the current epoch
        may still hold a reference.  Our property-based test
        (``test_no_premature_free_under_any_schedule``) found exactly this
        with the stale-epoch rule; filing under the locale epoch restores
        the two-full-advances quiescence guarantee.
        """
        self._check_usable()
        if self.local_epoch.read() == 0:
            raise TokenStateError("defer_delete requires a pinned token")
        inst = self._inst
        epoch = inst.locale_epoch.read()
        inst.limbo_lists[epoch - 1].push(addr)
        inst.deferred_count += 1  # diagnostic; benign race
        if self._track_ages:
            # Limbo-age fact: min-fold the retire timestamp into the
            # instance's per-slot array.  The (real) lock costs no virtual
            # time; it exists because socket siblings may retire into one
            # shared instance concurrently.
            now = current_context().clock.now
            slot = epoch - 1
            with inst.retire_vt_lock:
                cur = inst.slot_retire_vt[slot]
                if cur is None or now < cur:
                    inst.slot_retire_vt[slot] = now
            tr = self._full_tracer
            if tr is not None:
                # Unit+slot tag: the metrics registry pairs this with the
                # matching drain event to recover the exact limbo age.
                tr.guard(
                    "retire", "ebr", now, unit=tr.unit_id(inst), slot=slot
                )

    # Chapel-style alias.
    deferDelete = defer_delete

    def protect(self, addr: GlobalAddress, slot: int = 0) -> GlobalAddress:
        """Guard-protocol no-op: epochs protect whole pinned regions."""
        return addr

    def try_reclaim(self) -> bool:
        """Attempt a global epoch advance (defers to the manager)."""
        self._check_usable()
        return self._inst.manager.try_reclaim()

    tryReclaim = try_reclaim

    # ------------------------------------------------------------------
    def unregister(self) -> None:
        """Release the token back to its locale's free list (idempotent)."""
        if not self._registered:
            return
        self.local_epoch.write(0)
        self._registered = False
        self._inst.free_tokens.push(self)

    def close(self) -> None:
        """Alias for :meth:`unregister`; hooks ``forall`` task cleanup."""
        self.unregister()

    def __enter__(self) -> "Token":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unregister()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Token(id={self.token_id}, locale={self._inst.locale_id},"
            f" epoch={self.local_epoch.peek()}, registered={self._registered})"
        )


class TokenFreeList:
    """Lock-free Treiber stack of unregistered tokens (intrusive)."""

    def __init__(self, runtime: "Runtime", home: int) -> None:
        self._head = AtomicRef(runtime, home, None, name=f"tokenfree@{home}")

    def push(self, token: Token) -> None:
        """Return ``token`` for reuse by a later ``register()``."""
        while True:
            head = self._head.read()
            token._free_next = head
            if self._head.compare_and_swap(head, token):
                return

    def pop(self) -> Optional[Token]:
        """Take a recycled token, or ``None`` when the list is empty."""
        while True:
            token = self._head.read()
            if token is None:
                return None
            if self._head.compare_and_swap(token, token._free_next):
                token._free_next = None
                return token


class TokenAllocatedList:
    """Append-only lock-free list of every token ever created here.

    ``tryReclaim`` walks it to compute the minimum epoch; unregistered
    tokens read as epoch 0 and never block advancement.
    """

    def __init__(self, runtime: "Runtime", home: int) -> None:
        self._head = AtomicRef(runtime, home, None, name=f"tokenalloc@{home}")
        #: Total tokens ever allocated on this locale (diagnostic).
        self.count = 0

    def push(self, token: Token) -> None:
        """Link a newly-created token (never removed afterwards)."""
        while True:
            head = self._head.read()
            token._alloc_next = head
            if self._head.compare_and_swap(head, token):
                self.count += 1  # benign race: diagnostic only
                return

    def __iter__(self) -> Iterator[Token]:
        """Walk the list (reads are plain loads; links are immutable)."""
        token = self._head.peek()
        while token is not None:
            yield token
            token = token._alloc_next
