"""Privatization: record-wrapped handles that resolve locally for free.

Chapel's "privatized" objects keep one instance per locale and forward all
accesses to the local one; the *record-wrapped* handle carries just the
privatization id **by value**, so acquiring the local instance requires no
communication at all — not even the metadata round trip a by-reference
handle would pay.  The paper credits this pattern (also the backbone of
Chapel arrays/domains and of CAL/CGL/CHGL/RCUArray) with making distributed
objects "no longer communication bound".

:class:`PrivatizedObject` packages the pattern: subclasses build one
instance per locale, register them, and call
:meth:`get_privatized_instance` on every operation.  The privatization
ablation benchmark compares this against a deliberately naive
:class:`UnprivatizedProxy` whose every resolution costs a GET from the
owner locale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Sequence

from ..runtime.context import maybe_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["PrivatizedObject", "UnprivatizedProxy"]


class PrivatizedObject:
    """Base class for objects with one privatized instance per locale."""

    def __init__(self, runtime: "Runtime", instances: Sequence[Any]) -> None:
        self._rt = runtime
        #: The record-wrapped id; the only state a handle needs.
        self._pid = runtime.register_privatized(instances)

    @property
    def runtime(self) -> "Runtime":
        """The owning runtime."""
        return self._rt

    @property
    def pid(self) -> int:
        """The privatization id (a small integer, copied by value)."""
        return self._pid

    def get_privatized_instance(self, locale_id: "int | None" = None) -> Any:
        """Resolve the instance local to the calling task (zero cost).

        This is the zero-communication fast path; it is called on *every*
        operation, which is exactly why it must not touch the network.
        """
        return self._rt.privatized_instance(self._pid, locale_id)

    # Chapel-style alias (Listing 4 spelling).
    getPrivatizedInstance = get_privatized_instance

    def _drop_instances(self) -> None:
        """Release the per-locale instances (called by ``destroy()``)."""
        self._rt.drop_privatized(self._pid)


class UnprivatizedProxy:
    """A deliberately naive handle that pays communication per resolution.

    Models what the paper's Section II-C says happens *without*
    record-wrapping/privatization: every access first fetches the object's
    metadata from its owner locale (one GET), making the object
    communication-bound.  Exists purely as the baseline for the
    privatization ablation.
    """

    def __init__(self, runtime: "Runtime", instances: Sequence[Any], owner: int = 0) -> None:
        self._rt = runtime
        self._instances: List[Any] = list(instances)
        #: Locale holding the canonical metadata.
        self.owner = owner

    def get_privatized_instance(self, locale_id: "int | None" = None) -> Any:
        """Resolve the per-locale instance *after* a metadata round trip."""
        ctx = maybe_context()
        if ctx is not None:
            # The metadata fetch a by-reference handle performs.
            self._rt.network.read(ctx, self.owner, nbytes=32)
            lid = locale_id if locale_id is not None else ctx.locale_id
        else:
            lid = locale_id if locale_id is not None else 0
        return self._instances[lid]
