"""Privatization: record-wrapped handles that resolve locally for free.

Chapel's "privatized" objects keep one instance per locale and forward all
accesses to the local one; the *record-wrapped* handle carries just the
privatization id **by value**, so acquiring the local instance requires no
communication at all — not even the metadata round trip a by-reference
handle would pay.  The paper credits this pattern (also the backbone of
Chapel arrays/domains and of CAL/CGL/CHGL/RCUArray) with making distributed
objects "no longer communication bound".

:class:`PrivatizedObject` packages the pattern: subclasses build one
instance per locale, register them, and call
:meth:`get_privatized_instance` on every operation.  The privatization
ablation benchmark compares this against a deliberately naive
:class:`UnprivatizedProxy` whose every resolution costs a GET from the
owner locale.

Locality-aware placement
------------------------
Under a multi-level topology (:mod:`repro.comm.topology`), one instance
*per locale* can be overkill: locales in one CPU-coherence domain (a
socket of the hierarchical topology) reach each other's memory at local
prices, so one instance per *domain* gives the same zero-communication
resolution with fewer replicas — NUMA-aware privatization.
:func:`coherence_domains` exposes the domain map and
:func:`replicate_coherent` builds a per-locale instance list that shares
one instance across each domain; the result plugs straight into
:class:`PrivatizedObject` (which neither knows nor cares that some
entries alias).  The :class:`UnprivatizedProxy` baseline is topology-
aware automatically: its metadata GET is charged through the network
model, so a same-socket owner costs a local load while a cross-node
owner pays the uplink.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Sequence

from ..runtime.context import maybe_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = [
    "PrivatizedObject",
    "UnprivatizedProxy",
    "coherence_domains",
    "replicate_coherent",
]


def coherence_domains(runtime: "Runtime") -> List[int]:
    """CPU-coherence domain id of every locale, in locale order.

    Locales sharing a domain reach each other at ``"coherent"`` distance
    (CPU prices, no serial network resource).  Flat and dragonfly
    topologies have one domain per locale; the hierarchical topology
    groups each socket into one domain.
    """
    topo = runtime.network.topology
    return [topo.coherence_domain(lid) for lid in range(runtime.num_locales)]


def replicate_coherent(
    runtime: "Runtime", factory: Callable[[int], Any]
) -> List[Any]:
    """One instance per coherence domain, replicated across its locales.

    ``factory(locale_id)`` is invoked once per domain with the domain's
    *first* locale (deterministic: smallest id); every other locale in
    the domain receives the same instance.  The returned list has exactly
    ``num_locales`` entries and is suitable for
    :meth:`Runtime.register_privatized` / :class:`PrivatizedObject`.
    """
    instances: List[Any] = []
    by_domain: Dict[int, Any] = {}
    for lid, domain in enumerate(coherence_domains(runtime)):
        if domain not in by_domain:
            by_domain[domain] = factory(lid)
        instances.append(by_domain[domain])
    return instances


class PrivatizedObject:
    """Base class for objects with one privatized instance per locale."""

    def __init__(self, runtime: "Runtime", instances: Sequence[Any]) -> None:
        self._rt = runtime
        #: The record-wrapped id; the only state a handle needs.
        self._pid = runtime.register_privatized(instances)

    @property
    def runtime(self) -> "Runtime":
        """The owning runtime."""
        return self._rt

    @property
    def pid(self) -> int:
        """The privatization id (a small integer, copied by value)."""
        return self._pid

    def get_privatized_instance(self, locale_id: "int | None" = None) -> Any:
        """Resolve the instance local to the calling task (zero cost).

        This is the zero-communication fast path; it is called on *every*
        operation, which is exactly why it must not touch the network.
        """
        return self._rt.privatized_instance(self._pid, locale_id)

    # Chapel-style alias (Listing 4 spelling).
    getPrivatizedInstance = get_privatized_instance

    def _drop_instances(self) -> None:
        """Release the per-locale instances (called by ``destroy()``)."""
        self._rt.drop_privatized(self._pid)


class UnprivatizedProxy:
    """A deliberately naive handle that pays communication per resolution.

    Models what the paper's Section II-C says happens *without*
    record-wrapping/privatization: every access first fetches the object's
    metadata from its owner locale (one GET), making the object
    communication-bound.  Exists purely as the baseline for the
    privatization ablation.
    """

    def __init__(self, runtime: "Runtime", instances: Sequence[Any], owner: int = 0) -> None:
        self._rt = runtime
        self._instances: List[Any] = list(instances)
        #: Locale holding the canonical metadata.
        self.owner = owner

    def get_privatized_instance(self, locale_id: "int | None" = None) -> Any:
        """Resolve the per-locale instance *after* a metadata round trip."""
        ctx = maybe_context()
        if ctx is not None:
            # The metadata fetch a by-reference handle performs.
            self._rt.network.read(ctx, self.owner, nbytes=32)
            lid = locale_id if locale_id is not None else ctx.locale_id
        else:
            lid = locale_id if locale_id is not None else 0
        return self._instances[lid]
