"""Runtime-wide introspection: service-point utilization and heap stats.

The paper argues its design keeps the global-epoch locale from being
"bogged down by redundant requests"; this module exposes the numbers that
let tests and ablations check such claims quantitatively rather than by
eyeballing curves: per-locale progress-thread busy time, NIC busy time,
heap allocation/reuse counters, and communication totals, bundled in one
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import Runtime

__all__ = ["RuntimeSnapshot", "snapshot"]


@dataclass
class RuntimeSnapshot:
    """A point-in-time view of every measurable resource in a runtime."""

    #: Virtual busy seconds of each locale's AM progress thread.
    progress_busy: List[float]
    #: Requests served by each progress thread.
    progress_served: List[int]
    #: Virtual busy seconds of each locale's NIC pipeline.
    nic_busy: List[float]
    #: Requests served by each NIC.
    nic_served: List[int]
    #: Heap statistics per locale (see :class:`repro.memory.heap.HeapStats`).
    heap_stats: List[Dict[str, int]]
    #: Communication totals across locales.
    comm_totals: Dict[str, int]

    @property
    def hottest_progress_locale(self) -> int:
        """Locale whose progress thread accumulated the most busy time."""
        return max(range(len(self.progress_busy)), key=self.progress_busy.__getitem__)

    @property
    def total_live_objects(self) -> int:
        """Live allocations across every locale heap."""
        return sum(h["live"] for h in self.heap_stats)

    def imbalance(self) -> float:
        """Max/mean ratio of progress-thread busy time (1.0 = balanced).

        The election-flag ablation uses this: without the FCFS election,
        the global-epoch home locale's progress thread shows a large
        imbalance under dense ``tryReclaim``.
        """
        if not self.progress_busy:
            return 1.0
        mean = sum(self.progress_busy) / len(self.progress_busy)
        if mean == 0.0:
            return 1.0
        return max(self.progress_busy) / mean


def snapshot(runtime: "Runtime") -> RuntimeSnapshot:
    """Collect a :class:`RuntimeSnapshot` from a runtime (no cost charged)."""
    net = runtime.network
    return RuntimeSnapshot(
        progress_busy=[p.busy_time for p in net.progress],
        progress_served=[p.served for p in net.progress],
        nic_busy=[p.busy_time for p in net.nic],
        nic_served=[p.served for p in net.nic],
        heap_stats=[loc.heap.snapshot_stats().as_dict() for loc in runtime.locales],
        comm_totals=net.diags.totals(),
    )
