"""Virtual time: per-task clocks and queueing service points.

The simulation measures *virtual* time, not wall time.  Every task carries a
:class:`TaskClock`; every simulated operation advances the current task's
clock by that operation's latency.  Contended hardware resources — a NIC
pipeline, a progress thread, a hot cache line — are modelled as
:class:`ServicePoint` instances: a serial server in virtual time.  An
operation that needs a resource completes at::

    finish = max(task.now + latency, point.next_free) + service
    point.next_free = finish

which is an M/D/1-style queue driven by the actual operation stream of the
running algorithms.  This is the mechanism that turns "64 tasks hammer one
atomic" into a flat-lining curve and "all AMs land on locale 0's progress
thread" into a bottleneck, reproducing the scaling behaviour the paper
measures on real hardware.

Parallel constructs compose clocks with ``max``: children are seeded with
the parent's time plus a fork cost, and the parent resumes at the maximum
child finish time plus a join cost (see
:meth:`~repro.runtime.runtime.Runtime.coforall_locales`).

Thread-safety: clocks are mutated only by their owning task (thread);
service points are shared and internally locked.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["TaskClock", "ServicePoint"]


class TaskClock:
    """A monotonically non-decreasing virtual clock owned by one task.

    The clock starts at the spawning construct's time so that virtual time
    is globally consistent across the task tree.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        #: Current virtual time, in seconds.
        self.now = float(start)

    def advance(self, dt: float) -> float:
        """Add ``dt`` seconds of work and return the new time.

        ``dt`` must be non-negative; charging functions guarantee this by
        construction (cost constants are positive).
        """
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t`` if ``t`` is later.

        Used when an operation's completion is determined by a shared
        resource (see :meth:`ServicePoint.serve`); never moves backwards.
        """
        if t > self.now:
            self.now = t
        return self.now

    def fork(self, overhead: float = 0.0) -> "TaskClock":
        """Create a child clock seeded at ``now + overhead``."""
        return TaskClock(self.now + overhead)

    def join(self, *children: "TaskClock", overhead: float = 0.0) -> float:
        """Absorb finished child clocks: jump to the latest, plus overhead."""
        latest = max((c.now for c in children), default=self.now)
        self.advance_to(latest)
        if overhead:
            self.advance(overhead)
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TaskClock(now={self.now:.9f})"


class ServicePoint:
    """A serial resource in virtual time (NIC pipeline, progress thread...).

    ``serve`` computes when a request arriving at virtual time ``arrival``
    finishes.  The caller then advances its own task clock to the returned
    finish time.

    Out-of-order arrivals (the idle bank)
    -------------------------------------
    Because simulated tasks execute on real threads, a task may *really*
    run ahead of another and reserve server time far into the virtual
    future; a second task whose operations are virtually *earlier* must
    not be queued behind those reservations — on the real machine the two
    streams would have interleaved through the server's idle gaps.  The
    server therefore banks its idle time: an arrival earlier than
    ``next_free`` is served out of the accumulated ``idle_bank`` when
    possible (it fits in a past gap) and only queues at the tail when the
    bank is exhausted.  The invariant preserved is *capacity conservation*
    — the server never performs more than one second of service per second
    of virtual time — which is exactly the property that makes hot atomics
    and AM-swamped progress threads serialize, while the precise placement
    of individual gaps (unknowable under real-thread scheduling) is
    approximated.

    The accumulated ``busy_time`` and ``served`` counters are exposed for
    diagnostics: utilization of the global-epoch locale's progress thread is
    one of the quantities the paper reasons about when justifying the
    first-come-first-served election.
    """

    __slots__ = (
        "name",
        "_lock",
        "next_free",
        "idle_bank",
        "busy_time",
        "served",
        "_tracer",
    )

    def __init__(self, name: str = "") -> None:
        #: Human-readable identity for diagnostics output.
        self.name = name
        self._lock = threading.Lock()
        #: Virtual time at which the server's last *tail* reservation ends.
        self.next_free = 0.0
        #: Unused service capacity accumulated before ``next_free``.
        self.idle_bank = 0.0
        #: Total virtual time spent serving requests.
        self.busy_time = 0.0
        #: Number of requests served.
        self.served = 0
        #: Full-detail trace recorder, or None (the overwhelmingly common
        #: case).  Installed by the runtime at trace detail ``full``; the
        #: off cost is the single ``is None`` check in ``serve_locked``.
        self._tracer = None

    def serve(self, arrival: float, service: float) -> float:
        """Admit a request arriving at ``arrival`` needing ``service`` seconds.

        Returns the virtual completion time.  Thread-safe: concurrent tasks
        serialize on an internal (real) lock only long enough to reserve
        their virtual slot.  (Direct acquire/release rather than ``with``:
        this is the single hottest function in the simulator — every
        charged operation passes through one or two serves.)
        """
        lock = self._lock
        lock.acquire()
        try:
            return self.serve_locked(arrival, service)
        finally:
            lock.release()

    def serve_locked(self, arrival: float, service: float) -> float:
        """:meth:`serve` body for callers already holding ``_lock``.

        Atomic cells alias their value lock to their line's lock and
        reserve the line *and* commit the value in one critical section
        (one lock cycle per mutating op instead of two); this entry point
        lets them run the reservation without re-acquiring.

        This is the one place every serve passes through — ``serve``
        delegates here, and the compiled engine inlines the same
        recurrence in its ledgers — so the trace hook lands exactly once.
        """
        self.busy_time += service
        self.served += 1
        next_free = self.next_free
        if arrival >= next_free:
            # Server idle at arrival: bank the gap, run immediately.
            self.idle_bank += arrival - next_free
            self.next_free = finish = arrival + service
        else:
            bank = self.idle_bank
            if bank >= service:
                # Fits in a past idle gap: no effect on the tail.
                self.idle_bank = bank - service
                finish = arrival + service
            else:
                # Bank exhausted: genuine saturation — queue at the tail
                # for the un-banked remainder, but never finish earlier
                # than the request's own arrival + service.
                self.idle_bank = 0.0
                finish = next_free + (service - bank)
                floor = arrival + service
                if finish < floor:
                    finish = floor
                self.next_free = finish
        if self._tracer is not None:
            self._tracer.serve(self, arrival, service, finish)
        return finish

    def reset(self) -> None:
        """Zero the server (between benchmark trials)."""
        with self._lock:
            self.next_free = 0.0
            self.idle_bank = 0.0
            self.busy_time = 0.0
            self.served = 0

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of ``horizon`` (or of ``next_free``) spent busy."""
        with self._lock:
            span = horizon if horizon is not None else self.next_free
            if span <= 0.0:
                return 0.0
            return min(1.0, self.busy_time / span)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ServicePoint({self.name!r}, next_free={self.next_free:.9f}, "
            f"served={self.served})"
        )
