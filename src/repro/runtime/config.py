"""Runtime configuration: locale count, network flavour, cost calibration.

The two network flavours mirror the paper's experimental axis:

* :attr:`NetworkType.UGNI` — ``CHPL_NETWORK_ATOMICS`` present (Cray
  Gemini/Aries): 64-bit atomics are NIC-offloaded RDMA operations, remote
  *and local* (NIC atomics are not coherent with CPU atomics, so local ops
  pay the NIC trip too).
* :attr:`NetworkType.NONE` — no network atomics (also approximates
  InfiniBand under Chapel 1.20, which did not use IB RDMA atomics): local
  atomics are plain CPU atomics; remote atomics and remote execution are
  active messages serviced by the target's progress thread.

``RuntimeConfig`` is deliberately small and immutable — a benchmark sweep
constructs one runtime per point from a config and tears it down.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..comm.aggregation import AggregationSpec
from ..comm.costs import CostModel, DEFAULT_COSTS
from ..comm.topology import Topology
from ..errors import LocaleError
from ..policy import PolicySpec
from .axes import ENGINES, RECLAIMER_SCHEMES, MachineAxes

__all__ = ["NetworkType", "RuntimeConfig", "RECLAIMER_SCHEMES", "ENGINES"]


class NetworkType(enum.Enum):
    """Which atomic-operation transport the simulated interconnect offers."""

    #: RDMA network atomics available (Cray Gemini/Aries; the paper's `ugni`).
    UGNI = "ugni"
    #: No network atomics; remote atomics become active messages (`none`).
    NONE = "none"

    @classmethod
    def names(cls) -> "list[str]":
        """The accepted string spellings, for validation error messages."""
        return [m.value for m in cls]

    @classmethod
    def parse(cls, value: "NetworkType | str") -> "NetworkType":
        """Accept either an enum member or its string name ("ugni"/"none")."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            raise ValueError(
                f"unknown network type {value!r}; expected one of"
                f" {cls.names()}"
            ) from None


@dataclass(frozen=True)
class RuntimeConfig:
    """Immutable description of one simulated machine.

    Parameters
    ----------
    num_locales:
        Number of simulated compute nodes (Chapel locales). Must be >= 1.
    network:
        Interconnect flavour; see :class:`NetworkType`.
    costs:
        Virtual-time calibration; defaults to
        :data:`repro.comm.costs.DEFAULT_COSTS`.
    tasks_per_locale:
        Default number of worker tasks a ``forall`` spawns per locale.
        (The paper's machine ran 44; the simulator defaults low because
        each task is a real thread.)
    seed:
        Seed for all task-local RNGs; sweeps derive per-task seeds from it
        deterministically.
    reclaimer:
        Which memory-reclamation scheme structures and workloads use by
        default: ``"ebr"`` (the paper's distributed epoch-based scheme),
        ``"hp"`` (per-task hazard pointers), ``"qsbr"`` (quiescent-state
        based) or ``"ibr"`` (interval-based).  See docs/RECLAMATION.md.
    worker_pool_size:
        Maximum real threads in the runtime's persistent
        :class:`~repro.runtime.tasking.WorkerPool`.  ``None`` (the default)
        resolves to ``max(2, os.cpu_count())`` — enough for genuine
        interleavings without GIL convoying.  Virtual-time results are
        independent of this knob (see docs/ENGINE.md); it only trades real
        parallelism against scheduler overhead.
    heap_base:
        First virtual address each per-locale heap hands out. Nonzero so
        that the compressed representation of ``nil`` (0) can never collide
        with a real allocation.
    heap_alignment:
        Allocation alignment in bytes. Must be a power of two >= 2; the low
        ``log2(alignment)`` bits of every address are guaranteed zero, which
        the Harris list uses for its logical-deletion mark bit.
    topology:
        Interconnect shape: a spec string (``"flat"`` — the default and
        the legacy behaviour — ``"hier:2x2"``, ``"dragonfly:4"``), a
        mapping, or a :class:`~repro.comm.topology.Topology` instance.
        Determines the distance class — and therefore the cost route and
        contention point — of every (source, home) locale pair.  See
        docs/TOPOLOGY.md.
    aggregation:
        Message-aggregation window (see :mod:`repro.comm.aggregation` and
        docs/AGGREGATION.md): the maximum number of same-uplink-group
        operations one traversal may carry on the reclamation scan paths.
        ``1`` (the default) or ``"off"`` disables aggregation — every
        path then runs the legacy one-message-per-op shape, bit-identical
        to the pre-aggregation engine.  Accepts an int, a string spec, a
        ``{"window": N}`` mapping, or an
        :class:`~repro.comm.aggregation.AggregationSpec`.
    engine:
        Workload execution engine (see :data:`ENGINES` and
        docs/ENGINE.md): ``"interpreted"`` (the default) runs op streams
        on real worker threads charging per operation; ``"compiled"``
        asks workload generators to lower their fixed op streams into
        columnar batches replayed by :mod:`repro.engine`.  Virtual
        results are bit-identical either way — the knob trades wall-clock
        only.  Generators without a compiled lowering silently fall back
        to the interpreter.
    trace:
        Observability detail (see :mod:`repro.obs` and
        docs/OBSERVABILITY.md): ``"off"`` (the default — no recorder
        installed, hot paths pay at most one attribute check),
        ``"spans"`` (root-driven phase/policy/reclaim events), or
        ``"full"`` (adds per-op charges, ServicePoint serves, uplink
        batches, and guard events; forces inline-serial task execution
        for a canonical schedule — virtual time is unchanged by the
        pool-size-invariance contract).  Like ``engine``, this is a
        machine-style knob that is deliberately NOT a machine axis: it
        never changes virtual results and is never recorded in
        baselines.
    policy:
        Virtual-time policy axis (see :mod:`repro.policy` and
        docs/POLICY.md): one spec string naming an epoch-advance policy
        half (``"fixed"`` — the default, today's cadence —
        ``"threshold:N"``, ``"decay:N[:curve[:horizon]]"``,
        ``"grace:T"``) and/or an aggregation-window policy half
        (``"static"`` — the default — ``"adaptive:lo..hi"``) joined by
        ``+``.  The default ``"fixed"`` (fixed epochs, static window) is
        bit-identical to the pre-policy engine.  Accepts a spec string,
        a ``{"epoch": ..., "window": ...}`` mapping, or a
        :class:`~repro.policy.PolicySpec`.
    """

    num_locales: int = 4
    network: NetworkType = NetworkType.UGNI
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    tasks_per_locale: int = 2
    seed: int = 0xC0FFEE
    heap_base: int = 0x1000
    heap_alignment: int = 16
    worker_pool_size: Optional[int] = None
    reclaimer: str = "ebr"
    topology: Any = "flat"
    aggregation: Any = 1
    engine: str = "interpreted"
    policy: Any = "fixed"
    trace: str = "off"

    def __post_init__(self) -> None:
        if self.num_locales < 1:
            raise LocaleError(f"num_locales must be >= 1, got {self.num_locales}")
        if self.tasks_per_locale < 1:
            raise ValueError(
                f"tasks_per_locale must be >= 1, got {self.tasks_per_locale}"
            )
        if self.worker_pool_size is not None and self.worker_pool_size < 1:
            raise ValueError(
                f"worker_pool_size must be >= 1, got {self.worker_pool_size}"
            )
        if self.heap_alignment < 2 or (
            self.heap_alignment & (self.heap_alignment - 1)
        ):
            raise ValueError(
                f"heap_alignment must be a power of two >= 2, got"
                f" {self.heap_alignment}"
            )
        # Normalize string network names passed positionally.
        object.__setattr__(self, "network", NetworkType.parse(self.network))
        # The trace knob is validated here, not via MachineAxes: like
        # `engine` it can never change virtual results, so it must never
        # become part of the recorded machine identity.
        from ..obs import parse_trace

        object.__setattr__(self, "trace", parse_trace(self.trace))
        # Resolve (and thereby validate) every machine axis eagerly
        # through the shared spec layer (:mod:`repro.runtime.axes`); the
        # bundle is cached outside the dataclass fields so replace()
        # re-resolves and frozen semantics are preserved.
        object.__setattr__(
            self,
            "_axes",
            MachineAxes.parse(
                num_locales=self.num_locales,
                reclaimer=self.reclaimer,
                topology=self.topology,
                aggregation=self.aggregation,
                engine=self.engine,
                policy=self.policy,
            ),
        )

    def with_(self, **overrides) -> "RuntimeConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def resolved_axes(self) -> MachineAxes:
        """The parsed machine-axis bundle (see :mod:`repro.runtime.axes`)."""
        return self._axes

    def resolved_topology(self) -> Topology:
        """The :class:`~repro.comm.topology.Topology` instance this config
        describes (``topology`` may be a string spec, mapping, or object;
        see :func:`repro.comm.topology.parse_topology`)."""
        return self._axes.topology

    def resolved_aggregation(self) -> AggregationSpec:
        """The validated :class:`~repro.comm.aggregation.AggregationSpec`
        this config describes (``aggregation`` may be an int, string,
        mapping, or spec object)."""
        return self._axes.aggregation

    def resolved_policy(self) -> PolicySpec:
        """The validated :class:`~repro.policy.PolicySpec` this config
        describes (``policy`` may be a spec string, mapping, or object)."""
        return self._axes.policy

    @classmethod
    def from_topology(
        cls,
        *,
        locales: int,
        network: "NetworkType | str" = NetworkType.UGNI,
        cost_profile: str = "default",
        cost_scale: float = 1.0,
        cost_overrides: "Optional[dict]" = None,
        tasks_per_locale: int = 1,
        seed: int = 0xC0FFEE,
        worker_pool_size: Optional[int] = None,
        reclaimer: str = "ebr",
        topology: Any = "flat",
        aggregation: Any = 1,
        engine: str = "interpreted",
        policy: Any = "fixed",
        trace: str = "off",
    ) -> "RuntimeConfig":
        """Build a config from declarative topology primitives.

        This is the constructor the scenario engine
        (:mod:`repro.bench.scenarios`) uses: the cost model is named by
        *profile* (see :data:`repro.comm.costs.COST_PROFILES`) and adjusted
        with a uniform ``cost_scale`` and per-field ``cost_overrides``
        instead of being passed as an object, and the interconnect shape
        — node/socket/group structure — by a ``topology`` spec string
        (``"flat"``, ``"hier:2x2"``, ``"dragonfly:4"``; see
        :func:`repro.comm.topology.parse_topology`), so a TOML file can
        describe the whole machine.
        """
        from ..comm.costs import resolve_cost_model

        return cls(
            num_locales=locales,
            network=NetworkType.parse(network),
            costs=resolve_cost_model(
                cost_profile, scale=cost_scale, overrides=cost_overrides
            ),
            tasks_per_locale=tasks_per_locale,
            seed=seed,
            worker_pool_size=worker_pool_size,
            reclaimer=reclaimer,
            topology=topology,
            aggregation=aggregation,
            engine=engine,
            policy=policy,
            trace=trace,
        )

    @property
    def uses_network_atomics(self) -> bool:
        """True when 64-bit atomics ride the NIC (the `ugni` behaviour)."""
        return self.network is NetworkType.UGNI

    def resolved_worker_pool_size(self) -> int:
        """The effective worker-pool bound (default: ``max(2, cpu_count)``)."""
        if self.worker_pool_size is not None:
            return self.worker_pool_size
        return max(2, os.cpu_count() or 1)
