"""The simulated PGAS runtime: locales, tasks, global memory, timers.

:class:`Runtime` is the root object of the library.  It plays the role of
the Chapel runtime in the paper: it owns the locales (each with a simulated
heap), the network model (cost charging + diagnostics), and the tasking
constructs (``on`` / ``coforall`` / ``forall``).  Everything else — atomics,
``AtomicObject``, the epoch managers, the data structures — is built on the
operations exposed here.

A minimal session::

    from repro import Runtime

    rt = Runtime(num_locales=4, network="ugni")

    def main():
        counter = rt.atomic_int(locale=0)
        def body(i):
            counter.add(1)
        rt.forall(range(1000), body)
        assert counter.read() == 1000

    rt.run(main)

Design notes
------------
* ``run`` installs a root task context on the calling thread (locale 0,
  virtual time 0) — all PGAS operations must happen inside it.
* ``forall`` distributes items cyclically across locales by index (the
  analogue of iterating a ``Cyclic``-distributed array), spawning
  ``tasks_per_locale`` worker tasks per locale, and supports Chapel-style
  task-private values via ``task_init`` (the ``with (var tok = ...)``
  intent in the paper's Listing 5); a task-private value with a ``close()``
  method is closed when the task ends, mirroring the managed token's
  automatic unregister.
* Virtual time: see :mod:`repro.runtime.clock`.  ``timed()`` measures the
  current task's virtual elapsed time, which — because joins take the max
  over children — equals the latest finish among tasks in the region.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import weakref
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..atomics.integer import AtomicBool, AtomicInt64, AtomicUInt64
from ..atomics.wide import AtomicWide128
from ..comm.counters import CommOp
from ..errors import LocaleError, NoTaskContextError, RuntimeStateError
from ..memory.address import GlobalAddress, is_nil
from ..memory.heap import Heap
from .clock import TaskClock
from .config import NetworkType, RuntimeConfig
from .context import TaskContext, context_scope, current_context, maybe_context
from .tasking import TaskGroup, WorkerPool, spawn_tree_overhead

T = TypeVar("T")

__all__ = ["Locale", "Runtime", "Timer"]


class Locale:
    """One simulated compute node: an id, a name, and a heap."""

    __slots__ = ("id", "name", "heap")

    def __init__(self, locale_id: int, config: RuntimeConfig) -> None:
        self.id = locale_id
        self.name = f"locale{locale_id}"
        self.heap = Heap(
            locale_id, base=config.heap_base, alignment=config.heap_alignment
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Locale(id={self.id})"


class Timer:
    """Result holder for :meth:`Runtime.timed` regions."""

    __slots__ = ("elapsed", "start")

    def __init__(self) -> None:
        #: Virtual seconds elapsed in the region (filled at scope exit).
        self.elapsed = 0.0
        #: Virtual start time of the region.
        self.start = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timer(elapsed={self.elapsed:.9f})"


class Runtime:
    """A simulated PGAS machine (see module docstring for an overview)."""

    def __init__(
        self,
        num_locales: int = 4,
        network: "NetworkType | str" = NetworkType.UGNI,
        *,
        costs=None,
        tasks_per_locale: int = 2,
        seed: int = 0xC0FFEE,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        if config is None:
            kwargs: Dict[str, Any] = dict(
                num_locales=num_locales,
                network=NetworkType.parse(network),
                tasks_per_locale=tasks_per_locale,
                seed=seed,
            )
            if costs is not None:
                kwargs["costs"] = costs
            config = RuntimeConfig(**kwargs)
        # Imported here (not at module top) to break the package import
        # cycle runtime.runtime -> comm.network -> runtime.clock.
        from ..comm.network import NetworkModel

        #: Immutable machine description.
        self.config = config
        #: The cost/diagnostics engine shared by every operation.
        self.network = NetworkModel(config)
        #: The virtual-time flight recorder (docs/OBSERVABILITY.md), or
        #: None when ``config.trace == "off"`` — the common case, in which
        #: no traced path pays more than one attribute check.
        self._tracer = None
        #: The recorder again iff the detail is ``full`` (per-op events).
        self._full_tracer = None
        #: Full-detail tracing forces the canonical inline-serial task
        #: schedule (see TaskGroup.spawn) so per-serve micro-values are
        #: deterministic; virtual time is unchanged by the pool-size
        #: invariance contract.
        self._inline_tasks = False
        if config.trace != "off":
            from ..obs import TraceRecorder

            tracer = TraceRecorder(config.num_locales, config.trace)
            self._tracer = tracer
            if tracer.wants_full:
                self._full_tracer = tracer
                self._inline_tasks = True
                self.network.install_tracer(tracer)
        #: The simulated nodes.
        self.locales: List[Locale] = [
            Locale(i, config) for i in range(config.num_locales)
        ]
        self._task_ids = itertools.count(1)
        self._task_id_lock = threading.Lock()
        self._privatized: List[Any] = []
        self._privatized_lock = threading.Lock()
        # Persistent worker pool: created lazily on first spawn, reused by
        # every coforall/forall, torn down on close() or GC (the finalizer
        # must not reference `self`, or the runtime could never be
        # collected and pool threads would leak across benchmark sweeps).
        self._pool: Optional[WorkerPool] = None
        self._pool_init_lock = threading.Lock()
        self._pool_finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def num_locales(self) -> int:
        """Number of simulated locales."""
        return self.config.num_locales

    @property
    def topology(self):
        """The interconnect :class:`~repro.comm.topology.Topology`."""
        return self.network.topology

    @property
    def aggregation(self):
        """The :class:`~repro.comm.aggregation.AggregationSpec` in force."""
        return self.network.aggregation

    def locale_distance(self, src: int, dst: int) -> int:
        """Distance-class index between two locales (0 = same locale).

        Smaller is closer; the class's meaning (coherent / NIC / uplink)
        is topology-specific — see ``rt.topology.classes``.
        """
        self.locale(src)
        self.locale(dst)
        return self.network.topology.distance(src, dst)

    def locale(self, locale_id: int) -> Locale:
        """Return the :class:`Locale` with the given id (validated)."""
        if not (0 <= locale_id < self.num_locales):
            raise LocaleError(
                f"locale {locale_id} out of range [0, {self.num_locales})"
            )
        return self.locales[locale_id]

    def here(self) -> int:
        """Chapel's ``here.id``: the current task's locale."""
        return current_context().locale_id

    def _next_task_id(self) -> int:
        with self._task_id_lock:
            return next(self._task_ids)

    # ------------------------------------------------------------------
    # worker-pool lifecycle
    # ------------------------------------------------------------------
    def _worker_pool(self) -> WorkerPool:
        """The runtime's persistent task pool (lazily created, then reused)."""
        pool = self._pool
        if pool is None:
            with self._pool_init_lock:
                pool = self._pool
                if pool is None:
                    pool = WorkerPool(self.config.resolved_worker_pool_size())
                    self._pool_finalizer = weakref.finalize(
                        self, WorkerPool.shutdown, pool
                    )
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; implied by GC).

        Call between sweep points, or rely on the garbage-collection
        finalizer — pool threads are daemons either way, so forgetting to
        close never hangs interpreter exit.
        """
        fin = self._pool_finalizer
        if fin is not None:
            fin()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # privatization registry (Chapel's privatized-object table)
    # ------------------------------------------------------------------
    def register_privatized(self, instances: Sequence[Any]) -> int:
        """Register one instance per locale; return the privatization id.

        The record-wrapped handle stores only this id, so resolving the
        local instance (:meth:`privatized_instance`) costs nothing — the
        zero-communication fast path the paper attributes its scalability
        to.
        """
        if len(instances) != self.num_locales:
            raise LocaleError(
                f"need exactly {self.num_locales} privatized instances,"
                f" got {len(instances)}"
            )
        with self._privatized_lock:
            pid = len(self._privatized)
            self._privatized.append(list(instances))
            return pid

    def privatized_instance(self, pid: int, locale_id: Optional[int] = None) -> Any:
        """Resolve the privatized instance for ``locale_id`` (default: here).

        Deliberately charges no virtual time: the whole point of
        privatization + record-wrapping is that this lookup is a local
        table access.
        """
        if locale_id is None:
            locale_id = current_context().locale_id
        return self._privatized[pid][locale_id]

    def drop_privatized(self, pid: int) -> None:
        """Release the per-locale instances for a destroyed object."""
        with self._privatized_lock:
            self._privatized[pid] = None

    # ------------------------------------------------------------------
    # atomics factories
    # ------------------------------------------------------------------
    def atomic_uint(self, initial: int = 0, *, locale: int = 0, name: str = "") -> AtomicUInt64:
        """Create an unsigned 64-bit atomic living on ``locale``."""
        self.locale(locale)
        return AtomicUInt64(self, locale, initial, name)

    def atomic_int(self, initial: int = 0, *, locale: int = 0, name: str = "") -> AtomicInt64:
        """Create a signed 64-bit atomic (Chapel ``atomic int``)."""
        self.locale(locale)
        return AtomicInt64(self, locale, initial, name)

    def atomic_bool(self, initial: bool = False, *, locale: int = 0, name: str = "") -> AtomicBool:
        """Create an atomic boolean flag living on ``locale``."""
        self.locale(locale)
        return AtomicBool(self, locale, initial, name)

    def atomic_wide(
        self, initial: Tuple[int, int] = (0, 0), *, locale: int = 0, name: str = ""
    ) -> AtomicWide128:
        """Create a 128-bit double-word atomic (DCAS target)."""
        self.locale(locale)
        return AtomicWide128(self, locale, initial, name)

    # ------------------------------------------------------------------
    # global memory operations
    # ------------------------------------------------------------------
    def new_obj(self, payload: Any, *, locale: Optional[int] = None) -> GlobalAddress:
        """Allocate ``payload`` on ``locale`` (default: here); return address.

        Remote allocation costs an RPC, as in any PGAS runtime — node-based
        structures therefore allocate locally and publish with an atomic.
        """
        ctx = maybe_context()
        if locale is None:
            if ctx is None:
                raise NoTaskContextError(
                    "new_obj without an explicit locale requires a task context"
                )
            locale = ctx.locale_id
        heap = self.locale(locale).heap
        if ctx is not None:
            self.network.alloc(ctx, locale)
        return heap.alloc(payload)

    def deref(self, addr: GlobalAddress) -> Any:
        """Load the object a wide pointer names (a GET when remote).

        The returned Python object is the *node itself* (one simulated
        cache-line fetch); subsequent field accesses on it are free, like
        reading a struct already copied to local memory.
        """
        if is_nil(addr):
            raise LocaleError("deref of nil GlobalAddress")
        ctx = maybe_context()
        if ctx is not None:
            self.network.read(ctx, addr.locale, nbytes=64)
        return self.locale(addr.locale).heap.load(addr.offset)

    def put(self, addr: GlobalAddress, payload: Any) -> None:
        """Replace the object at ``addr`` (a PUT when remote)."""
        if is_nil(addr):
            raise LocaleError("put to nil GlobalAddress")
        ctx = maybe_context()
        if ctx is not None:
            self.network.write(ctx, addr.locale, nbytes=64)
        self.locale(addr.locale).heap.store(addr.offset, payload)

    def free(self, addr: GlobalAddress) -> None:
        """Free the allocation at ``addr`` (remote free = RPC)."""
        if is_nil(addr):
            raise LocaleError("free of nil GlobalAddress")
        ctx = maybe_context()
        if ctx is not None:
            self.network.free(ctx, addr.locale)
        self.locale(addr.locale).heap.free(addr.offset)

    def free_bulk(
        self, locale_id: int, offsets: Sequence[int], *, rpc: bool = True
    ) -> int:
        """Free many allocations on one locale as a single batch.

        This is what the scatter list feeds: one RPC + amortized per-object
        cost instead of one RPC per object.  ``rpc=False`` skips the
        round-trip charge (the amortized per-object frees are still paid):
        the aggregation layer (:mod:`repro.comm.aggregation`) uses it when
        the crossing was already charged as part of a coalesced batch.
        """
        offs = list(offsets)
        ctx = maybe_context()
        if ctx is not None:
            self.network.bulk_free(ctx, locale_id, len(offs), rpc=rpc)
        return self.locale(locale_id).heap.free_bulk(offs)

    def is_live(self, addr: GlobalAddress) -> bool:
        """Liveness check (no cost; testing / assertions)."""
        if is_nil(addr):
            return False
        return self.locale(addr.locale).heap.is_live(addr.offset)

    # ------------------------------------------------------------------
    # execution constructs
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., T], *args: Any, locale: int = 0) -> T:
        """Execute ``fn(*args)`` as the root task (virtual time 0).

        The analogue of Chapel's ``main`` — every example, test and
        benchmark enters simulated execution through here.
        """
        if maybe_context() is not None:
            raise RuntimeStateError("Runtime.run cannot be nested inside a task")
        ctx = TaskContext(
            runtime=self,
            locale_id=self.locale(locale).id,
            clock=TaskClock(0.0),
            task_id=self._next_task_id(),
        )
        ctx.rng.seed(self.config.seed)
        with context_scope(ctx):
            return fn(*args)

    @contextlib.contextmanager
    def on(self, locale_id: int) -> Iterator[Locale]:
        """Chapel's ``on Locales[i]``: execute the body on another locale.

        Charges a remote fork on entry and the return message on exit; the
        body runs with ``here`` rebound.  No real thread migration happens
        (costs are what matter).
        """
        target = self.locale(locale_id)
        ctx = current_context()
        origin = ctx.locale_id
        self.network.remote_fork(ctx, target.id)
        ctx.locale_id = target.id
        try:
            yield target
        finally:
            self.network.remote_return(ctx, origin)
            ctx.locale_id = origin

    def coforall_locales(
        self,
        body: Callable[[int], None],
        *,
        locales: Optional[Sequence[int]] = None,
    ) -> None:
        """Run ``body(locale_id)`` as one task per locale; block until done.

        The parent's virtual clock advances to the slowest child plus the
        join cost — the paper's global scans (Listing 4) are built from
        exactly this construct.
        """
        ctx = current_context()
        ids = list(range(self.num_locales)) if locales is None else list(locales)
        costs = self.config.costs
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        # Per-hop spawn cost reflects the worst distance class the
        # broadcast tree spans (flat: exactly task_spawn_remote).
        overhead = spawn_tree_overhead(
            len(ids), self.network.spawn_broadcast_cost(ctx.locale_id, ids)
        )
        group = TaskGroup(self)
        for lid in ids:
            self.locale(lid)
            if not self.network.is_coherent(ctx.locale_id, lid):
                # Coherent peers are spawned over shared memory — no
                # message, so (like every coherent-class charge) nothing
                # is recorded in comm diags.
                self.network.diags.record(ctx.locale_id, CommOp.FORK)
            group.spawn(body, (lid,), locale_id=lid, start_time=ctx.clock.now + overhead)
        finish = group.join()
        ctx.clock.advance_to(finish)
        ctx.clock.advance(costs.task_join)
        if tr is not None:
            tr.span("coforall", t0, ctx.clock.now, tasks=len(ids))

    def forall(
        self,
        items: Iterable[T],
        body: Callable[..., None],
        *,
        task_init: Optional[Callable[[], Any]] = None,
        tasks_per_locale: Optional[int] = None,
        owner_of: Optional[Callable[[T, int], int]] = None,
    ) -> None:
        """Parallel loop over ``items`` distributed cyclically by index.

        Parameters
        ----------
        items:
            The iteration space (materialized once).
        body:
            Called as ``body(item)`` — or ``body(item, tls)`` when
            ``task_init`` is given — on the locale that owns the item.
        task_init:
            Factory for a task-private value, created once per worker task
            *on that task's locale* (the ``with (var tok = em.register())``
            intent from the paper).  If the value has a ``close()`` method
            it is invoked when the task finishes (automatic unregister).
        tasks_per_locale:
            Worker tasks per locale; defaults to the runtime config.
        owner_of:
            Optional override mapping ``(item, index) -> locale id``;
            defaults to ``index % num_locales`` (a Cyclic distribution).
        """
        ctx = current_context()
        data = list(items)
        tpl = tasks_per_locale or self.config.tasks_per_locale
        nloc = self.num_locales
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0

        per_locale: List[List[T]] = [[] for _ in range(nloc)]
        if owner_of is None:
            # Cyclic distribution without the per-item validation call —
            # idx % nloc is a valid locale id by construction, and large
            # iteration spaces make this loop itself measurable.
            for idx, item in enumerate(data):
                per_locale[idx % nloc].append(item)
        else:
            for idx, item in enumerate(data):
                owner = owner_of(item, idx)
                if 0 <= owner < nloc:
                    per_locale[owner].append(item)
                else:
                    per_locale[self.locale(owner).id].append(item)

        costs = self.config.costs
        total_tasks = sum(
            min(tpl, len(chunk)) if chunk else 0 for chunk in per_locale
        )
        if total_tasks == 0:
            return
        overhead = spawn_tree_overhead(
            total_tasks,
            self.network.spawn_broadcast_cost(
                ctx.locale_id,
                [lid for lid, chunk in enumerate(per_locale) if chunk],
            ),
        )

        def worker(my_items: List[T]) -> None:
            tls = task_init() if task_init is not None else None
            try:
                if tls is None:
                    for item in my_items:
                        body(item)
                else:
                    for item in my_items:
                        body(item, tls)
            finally:
                close = getattr(tls, "close", None)
                if callable(close):
                    close()

        group = TaskGroup(self)
        start = ctx.clock.now + overhead
        for lid, chunk in enumerate(per_locale):
            if not chunk:
                continue
            ntasks = min(tpl, len(chunk))
            for w in range(ntasks):
                group.spawn(
                    worker, (chunk[w::ntasks],), locale_id=lid, start_time=start
                )
        finish = group.join()
        ctx.clock.advance_to(finish)
        ctx.clock.advance(costs.task_join)
        if tr is not None:
            # The compiled executor emits the identical event from its
            # phase replay (engine/executor.py) — field-for-field.
            tr.span("forall", t0, ctx.clock.now, tasks=total_tasks, items=len(data))

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def timed(self) -> Iterator[Timer]:
        """Measure virtual elapsed time of the enclosed region.

        Because joins absorb the slowest child, the reading equals "when
        did the last task in the region finish" — the quantity the paper's
        wall-clock plots show.
        """
        ctx = current_context()
        timer = Timer()
        timer.start = ctx.clock.now
        yield timer
        timer.elapsed = ctx.clock.now - timer.start
        tr = self._tracer
        if tr is not None:
            tr.span("timed", timer.start, ctx.clock.now)

    def reset_measurements(self) -> None:
        """Zero network counters and service points (between bench trials).

        The network layer also resets the flight recorder's per-point
        idle-bank memory so post-reset ``dbank`` deltas restart from 0."""
        self.network.reset_measurements()

    def comm_totals(self) -> Dict[str, int]:
        """Shortcut to the network diagnostics totals."""
        return self.network.diags.totals()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Runtime(num_locales={self.num_locales},"
            f" network={self.config.network.value})"
        )
