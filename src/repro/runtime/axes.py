"""One spec layer for every machine axis: parse, validate, normalize.

Before this module each machine axis had its own ad-hoc plumbing —
``reclaimer`` was a bare string checked against a tuple, ``topology``
went through :func:`~repro.comm.topology.parse_topology`,
``aggregation`` through :func:`~repro.comm.aggregation.
parse_aggregation`, ``engine`` was another bare string, and the policy
axis would have been a fifth shape.  Here they share one contract:

* every axis has a **parser** (accepts the declarative spec forms,
  raises ``ValueError`` listing the valid names on anything else),
* a **spec round-trip** (``axis_spec(name, parsed)`` returns the
  canonical spec that re-parses to an equal value), and
* one registry (:data:`MACHINE_AXES`) driving
  :class:`~repro.runtime.config.RuntimeConfig` validation, the scenario
  ``TopologySpec`` fields, and the CLI flags — so a new axis is one
  registry entry, not four copies of the idiom.

:class:`MachineAxes` bundles the parsed values of all five axes for one
machine; ``RuntimeConfig`` builds one eagerly in ``__post_init__`` and
serves ``resolved_topology`` / ``resolved_aggregation`` /
``resolved_policy`` straight from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..comm.aggregation import AggregationSpec, parse_aggregation
from ..comm.topology import Topology, parse_topology
from ..policy import PolicySpec, parse_policy

__all__ = [
    "MachineAxis",
    "MachineAxes",
    "MACHINE_AXES",
    "RECLAIMER_SCHEMES",
    "ENGINES",
    "COMPILED_ENGINES",
    "compiled_requested",
    "axis_names",
    "parse_axis",
    "axis_spec",
]

#: Canonical names of the pluggable memory-reclamation schemes (see
#: :mod:`repro.reclaim`).  Declared here — not in ``repro.reclaim`` — so
#: that config validation does not import the reclaimer implementations
#: (which themselves build on the runtime).
RECLAIMER_SCHEMES = ("ebr", "hp", "qsbr", "ibr")

#: Workload execution engines (see :mod:`repro.engine` and docs/ENGINE.md):
#: ``"interpreted"`` charges every operation as it happens on real worker
#: threads; ``"compiled"`` lets workloads lower fixed op streams into
#: columnar batches replayed serially; ``"compiled-strict"`` is the same
#: engine with fallback turned into an error (a coverage gate — any phase
#: the generators cannot lower raises ``CompiledFallbackError`` instead of
#: silently running the interpreter).  Bit-identical by contract — the
#: axis trades wall-clock only, never virtual results.
ENGINES = ("interpreted", "compiled", "compiled-strict")

#: The engine values that request compiled execution (strict included).
COMPILED_ENGINES = frozenset(("compiled", "compiled-strict"))


def compiled_requested(engine: str) -> bool:
    """True when ``engine`` asks for compiled execution (strict or not)."""
    return engine in COMPILED_ENGINES


@dataclass(frozen=True)
class MachineAxis:
    """One machine axis: name, default, parser, canonical-spec projector."""

    name: str
    default: Any
    #: ``parse(value)`` — or ``parse(value, num_locales)`` when
    #: :attr:`needs_locales` — validates and returns the resolved value.
    parse: Callable[..., Any]
    #: ``spec(parsed)`` returns the canonical spec (round-trip contract).
    spec: Callable[[Any], Any]
    #: True when parsing needs the machine's locale count (topology).
    needs_locales: bool = False


def _choice_parser(name: str, choices: "tuple[str, ...]") -> Callable[[Any], str]:
    """Parser for enum-like axes: the shared unknown-name error idiom."""

    def parse(value: Any) -> str:
        if value not in choices:
            raise ValueError(
                f"unknown {name} {value!r}; expected one of {list(choices)}"
            )
        return value

    return parse


#: The axis registry, in canonical (report/CLI) order.
MACHINE_AXES: Dict[str, MachineAxis] = {
    "reclaimer": MachineAxis(
        name="reclaimer",
        default="ebr",
        parse=_choice_parser("reclaimer", RECLAIMER_SCHEMES),
        spec=lambda v: v,
    ),
    "topology": MachineAxis(
        name="topology",
        default="flat",
        parse=lambda value, num_locales: parse_topology(value, num_locales),
        spec=lambda topo: topo.spec(),
        needs_locales=True,
    ),
    "aggregation": MachineAxis(
        name="aggregation",
        default=1,
        parse=parse_aggregation,
        spec=lambda agg: agg.spec(),
    ),
    "engine": MachineAxis(
        name="engine",
        default="interpreted",
        parse=_choice_parser("engine", ENGINES),
        spec=lambda v: v,
    ),
    "policy": MachineAxis(
        name="policy",
        default="fixed",
        parse=parse_policy,
        spec=lambda pol: pol.spec(),
    ),
}


def axis_names() -> "tuple[str, ...]":
    """The machine-axis names in canonical order."""
    return tuple(MACHINE_AXES)


def parse_axis(name: str, value: Any, *, num_locales: Optional[int] = None) -> Any:
    """Parse/validate one axis value by axis name.

    The one entry point config and scenario validation share; an unknown
    axis name gets the same list-the-valid-names error shape as an
    unknown axis *value*.
    """
    try:
        axis = MACHINE_AXES[name]
    except KeyError:
        raise ValueError(
            f"unknown machine axis {name!r}; expected one of"
            f" {list(MACHINE_AXES)}"
        ) from None
    if axis.needs_locales:
        if num_locales is None:
            raise ValueError(f"axis {name!r} requires num_locales")
        return axis.parse(value, num_locales)
    return axis.parse(value)


def axis_spec(name: str, parsed: Any) -> Any:
    """The canonical spec of a parsed axis value (round-trips by contract)."""
    return MACHINE_AXES[name].spec(parsed)


@dataclass(frozen=True, eq=False)
class MachineAxes:
    """The parsed values of every machine axis for one machine."""

    reclaimer: str
    topology: Topology
    aggregation: AggregationSpec
    engine: str
    policy: PolicySpec

    @classmethod
    def parse(
        cls,
        *,
        num_locales: int,
        reclaimer: Any = "ebr",
        topology: Any = "flat",
        aggregation: Any = 1,
        engine: Any = "interpreted",
        policy: Any = "fixed",
    ) -> "MachineAxes":
        """Parse and validate all five axes in one shot."""
        return cls(
            reclaimer=parse_axis("reclaimer", reclaimer),
            topology=parse_axis("topology", topology, num_locales=num_locales),
            aggregation=parse_axis("aggregation", aggregation),
            engine=parse_axis("engine", engine),
            policy=parse_axis("policy", policy),
        )

    def spec(self) -> Dict[str, Any]:
        """Canonical spec per axis (each re-parses to an equal value)."""
        return {
            name: axis_spec(name, getattr(self, name))
            for name in MACHINE_AXES
        }
