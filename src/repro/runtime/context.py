"""Thread-local task context: who am I, where am I, what time is it.

Every simulated task — including the implicit "main" task a benchmark runs
in — owns a :class:`TaskContext` carrying its runtime, current locale, a
virtual :class:`~repro.runtime.clock.TaskClock`, and a deterministic RNG.
PGAS operations consult the current context to decide whether an access is
local or remote and to charge virtual time.

The context travels with the (real) thread that executes the task.  An
``on`` block temporarily rebinds the context's locale, mirroring Chapel task
migration without the expense of actually migrating a Python thread.
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional

from ..errors import NoTaskContextError
from .clock import TaskClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import Runtime

__all__ = ["TaskContext", "current_context", "maybe_context", "context_scope"]

_tls = threading.local()


@dataclass
class TaskContext:
    """Identity and virtual state of one running task.

    Attributes
    ----------
    runtime:
        The owning :class:`~repro.runtime.runtime.Runtime`.
    locale_id:
        The locale the task is currently executing on (mutated by ``on``).
    clock:
        The task's virtual clock.
    task_id:
        Unique id within the runtime (diagnostics / deterministic seeding).
    rng:
        Task-private PRNG seeded from the runtime seed and ``task_id`` so
        workloads are reproducible regardless of thread scheduling.
    diag_rows:
        Cache of the executing thread's comm-diagnostics stripe (set
        lazily by the first charged operation).  Valid for the task's
        whole life because a task runs start-to-finish on one real thread;
        saves a thread-local lookup on every charged operation.
    """

    runtime: "Runtime"
    locale_id: int
    clock: TaskClock
    task_id: int
    rng: random.Random = field(default_factory=random.Random)
    diag_rows: Optional[List[List[int]]] = None

    @property
    def here(self) -> int:
        """Chapel's ``here.id``: the locale this task is executing on."""
        return self.locale_id

    def is_local(self, locale_id: int) -> bool:
        """True when ``locale_id`` is the task's current locale."""
        return locale_id == self.locale_id


def current_context() -> TaskContext:
    """Return the current task's context, or raise :class:`NoTaskContextError`.

    All network-charging operations call this; running library code outside
    a task is a usage error with a precise, early failure.
    """
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise NoTaskContextError(
            "this operation must run inside a simulated task; wrap your code"
            " in Runtime.run(...) or a forall/coforall body"
        )
    return ctx


def maybe_context() -> Optional[TaskContext]:
    """Return the current task's context or ``None`` (never raises)."""
    return getattr(_tls, "ctx", None)


@contextlib.contextmanager
def context_scope(ctx: TaskContext) -> Iterator[TaskContext]:
    """Install ``ctx`` as the current context for the ``with`` body.

    Restores whatever context (possibly none) was previously installed, so
    nested scopes — e.g. the runtime's internal helpers running inside a
    user task — compose correctly.
    """
    prev = getattr(_tls, "ctx", None)
    _tls.ctx = ctx
    try:
        yield ctx
    finally:
        _tls.ctx = prev
