"""Simulated PGAS runtime: locales, tasks, virtual time, and execution.

Public surface:

* :class:`~repro.runtime.runtime.Runtime` — the machine; create one per
  experiment.
* :class:`~repro.runtime.config.RuntimeConfig` /
  :class:`~repro.runtime.config.NetworkType` — machine description.
* :class:`~repro.runtime.clock.TaskClock` /
  :class:`~repro.runtime.clock.ServicePoint` — the virtual-time engine.
* :func:`~repro.runtime.context.current_context` — the executing task.
* :func:`~repro.runtime.diagnostics.snapshot` — resource introspection.
"""

from .clock import ServicePoint, TaskClock
from .config import NetworkType, RuntimeConfig
from .context import TaskContext, current_context, maybe_context
from .diagnostics import RuntimeSnapshot, snapshot
from .runtime import Locale, Runtime, Timer
from .tasking import TaskGroup, WorkerPool

__all__ = [
    "Runtime",
    "Locale",
    "Timer",
    "RuntimeConfig",
    "NetworkType",
    "TaskClock",
    "ServicePoint",
    "TaskContext",
    "TaskGroup",
    "WorkerPool",
    "current_context",
    "maybe_context",
    "RuntimeSnapshot",
    "snapshot",
]
