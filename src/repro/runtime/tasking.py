"""Tasking: a persistent worker pool running simulated tasks on real threads.

Chapel's ``coforall`` creates one task per iteration and blocks until all
complete; ``forall`` creates a bounded number of worker tasks.  Both map
here onto :class:`TaskGroup`, a structured fork/join *submission handle*
over the runtime's :class:`WorkerPool`.  Each simulated task carries a
:class:`~repro.runtime.clock.TaskClock` seeded from its parent and runs on
one of a small, reused set of real Python threads (so interleavings, CAS
retries, and races are genuine) instead of a freshly created OS thread per
task — thread creation and GIL convoying used to dominate the simulator's
real wall-clock time.

Virtual-time composition is unchanged from the thread-per-task engine:
children are seeded at ``parent.now + fork_overhead`` where the overhead
models a binomial spawn tree (``ceil(log2(n+1))`` rounds of spawning); at
``join`` the parent's clock jumps to the latest child finish time plus a
join cost.  This is the rule that makes a timed ``forall`` report the
*slowest* task — exactly what a wall-clock measurement on the real machine
reports.  Virtual-time results are independent of real-thread scheduling
and therefore of the pool size (see docs/ENGINE.md).

Exception policy: the first exception raised by any child is re-raised in
the parent at ``join`` (after all children have stopped), so test failures
inside tasks surface as ordinary test failures.

Deadlock freedom: a joining task *helps* — while its children are pending
it pops and runs queued work items on its own thread.  A nested
``coforall`` inside a pool worker therefore always makes progress even
when every pool thread is blocked in a join, and the pool can stay small
(bounded by :meth:`~repro.runtime.config.RuntimeConfig.resolved_worker_pool_size`).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from ..errors import RuntimeStateError
from .clock import TaskClock
from .context import TaskContext, context_scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import Runtime

__all__ = ["TaskGroup", "WorkerPool", "spawn_tree_overhead"]


def spawn_tree_overhead(n_tasks: int, per_spawn: float) -> float:
    """Virtual cost of launching ``n_tasks`` via a binomial spawn tree.

    A single task spawning ``n`` children serially would pay ``n *
    per_spawn``; real runtimes fan out in a tree, paying ``ceil(log2(n+1))``
    rounds.  We charge every child the full tree depth (a conservative,
    uniform seed time).
    """
    if n_tasks <= 0:
        return 0.0
    return math.ceil(math.log2(n_tasks + 1)) * per_spawn


class _WorkItem:
    """One submitted simulated task: body, context, and owning group."""

    __slots__ = ("fn", "args", "ctx", "group")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        ctx: TaskContext,
        group: "TaskGroup",
    ) -> None:
        self.fn = fn
        self.args = args
        self.ctx = ctx
        self.group = group

    def run(self) -> None:
        """Execute the task body under its context; report to the group."""
        group = self.group
        try:
            with context_scope(self.ctx):
                self.fn(*self.args)
        except BaseException as exc:  # noqa: BLE001 - forwarded at join
            group._record_error(exc)
        finally:
            group._task_done()


class WorkerPool:
    """A bounded, lazily-grown pool of daemon threads running simulated tasks.

    One pool lives on each :class:`~repro.runtime.runtime.Runtime` and is
    reused across every ``coforall``/``forall`` for that runtime's whole
    life, then torn down on ``Runtime.close()`` (or garbage collection of
    the runtime).  Threads are created only when work is queued and no
    worker is idle, up to ``max_workers``; beyond that, items wait in the
    queue and are drained by workers finishing earlier items or by joining
    tasks *helping* (see :meth:`TaskGroup.join`).
    """

    def __init__(self, max_workers: int) -> None:
        self._max_workers = max(1, int(max_workers))
        # Two conditions over ONE lock: workers park on _cond, helping
        # joiners on _helpers.  Separate wait queues mean a submit's
        # notify() always lands on the idle worker it accounted for and
        # can never be stolen by a parked joiner.
        lock = threading.Lock()
        self._cond = threading.Condition(lock)
        self._helpers = threading.Condition(lock)
        self._queue: Deque[_WorkItem] = deque()
        self._threads: List[threading.Thread] = []
        self._idle = 0
        #: Idle workers already notified but not yet re-running: submit
        #: must not count them as available or a burst of submissions
        #: would all "wake" the same worker and serialize on it.
        self._woken = 0
        self._shutdown = False

    # -- introspection ----------------------------------------------------
    @property
    def max_workers(self) -> int:
        """Upper bound on pool threads (config: ``worker_pool_size``)."""
        return self._max_workers

    @property
    def thread_count(self) -> int:
        """Threads created so far (grows lazily, never shrinks until close)."""
        with self._cond:
            return len(self._threads)

    @property
    def is_shutdown(self) -> bool:
        """True once :meth:`shutdown` has run; submissions then fail."""
        return self._shutdown

    # -- submission / draining --------------------------------------------
    def submit(self, item: _WorkItem) -> None:
        """Queue one task; wake an un-woken idle worker or grow the pool."""
        with self._cond:
            if self._shutdown:
                raise RuntimeStateError("WorkerPool used after shutdown")
            self._queue.append(item)
            if self._idle > self._woken:
                self._woken += 1
                self._cond.notify()
            elif len(self._threads) < self._max_workers:
                t = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(t)
                t.start()
            else:
                # Every worker is busy or already woken; wake parked
                # joiners so a helping join can pick the item up.
                self._helpers.notify_all()

    def try_pop(self) -> Optional[_WorkItem]:
        """Steal one queued item (used by joining tasks to help)."""
        with self._cond:
            if self._queue:
                return self._queue.popleft()
            return None

    def wait(self, timeout: float) -> None:
        """Park a joiner until work is queued or any pool event fires.

        Joiners wake on submissions, task completions (see
        :meth:`ping`), and shutdown; the timeout is a belt-and-suspenders
        backstop, not the primary wake mechanism.
        """
        with self._helpers:
            if not self._queue and not self._shutdown:
                self._helpers.wait(timeout)

    def ping(self) -> None:
        """Wake parked joiners (called on task completion)."""
        with self._helpers:
            self._helpers.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    if self._shutdown:
                        return
                    self._idle += 1
                    self._cond.wait()
                    self._idle -= 1
                    if self._woken:
                        self._woken -= 1
                item = self._queue.popleft()
            item.run()

    def shutdown(self) -> None:
        """Stop all workers (queued items are drained first, then exit).

        Called by ``Runtime.close()`` and by the runtime's garbage-collection
        finalizer; callers must be quiescent (no outstanding joins).
        Idempotent and safe to call from any thread, including a pool
        worker (it simply skips joining itself).
        """
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
            self._helpers.notify_all()
            threads = list(self._threads)
        me = threading.current_thread()
        for t in threads:
            if t is not me:
                t.join(timeout=2.0)


class TaskGroup:
    """A structured group of simulated tasks submitted to the worker pool."""

    def __init__(self, runtime: "Runtime") -> None:
        self._rt = runtime
        self._pool: Optional[WorkerPool] = None
        self._clocks: List[TaskClock] = []
        self._errors: List[BaseException] = []
        # Plain lock: joiners park on the pool's helper condition (woken
        # by ping()), never on the group, so no Condition is needed here.
        self._lock = threading.Lock()
        self._pending = 0
        self._spawned = 0
        self._joined = False

    def spawn(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        *,
        locale_id: int,
        start_time: float,
    ) -> None:
        """Submit ``fn(*args)`` as a task on ``locale_id`` at ``start_time``.

        The task receives a fresh :class:`TaskContext`; its RNG is seeded
        deterministically from the runtime seed and the task id so workload
        randomness is reproducible run-to-run and independent of which
        pool thread ends up executing the task.
        """
        if self._joined:
            raise RuntimeStateError("TaskGroup already joined")
        inline = self._rt._inline_tasks
        if self._pool is None and not inline:
            self._pool = self._rt._worker_pool()
        clock = TaskClock(start_time)
        self._clocks.append(clock)
        task_id = self._rt._next_task_id()
        ctx = TaskContext(
            runtime=self._rt,
            locale_id=locale_id,
            clock=clock,
            task_id=task_id,
        )
        ctx.rng.seed((self._rt.config.seed << 20) ^ task_id)
        with self._lock:
            self._pending += 1
        if inline:
            # Canonical serial schedule (trace detail "full"): run the
            # task right here, in spawn-submission order — the schedule
            # the compiled engine replays.  Virtual time is unchanged by
            # the pool-size-invariance contract; per-serve micro-values
            # become schedule-independent facts.  context_scope nests, so
            # tasks spawning tasks compose; errors surface at join() as
            # usual via _record_error.
            _WorkItem(fn, args, ctx, self).run()
            self._spawned += 1
            return
        try:
            self._pool.submit(_WorkItem(fn, args, ctx, self))
        except BaseException:
            # Undo the reservation, or a later join() would wait forever
            # for a task that never entered the queue.
            with self._lock:
                self._pending -= 1
            self._clocks.pop()
            raise
        self._spawned += 1

    # -- pool callbacks ----------------------------------------------------
    def _record_error(self, exc: BaseException) -> None:
        with self._lock:
            self._errors.append(exc)

    def _task_done(self) -> None:
        with self._lock:
            self._pending -= 1
        # Wake joiners parked on the pool: a finishing task may have
        # queued helpable work, and our own completion may be what a
        # nested joiner is waiting to observe.
        pool = self._pool
        if pool is not None:
            pool.ping()

    # -- join ---------------------------------------------------------------
    def join(self) -> float:
        """Block until all tasks finish; return the latest virtual finish.

        While waiting, the joining thread *helps*: it pops queued work
        items (its own children or anyone else's) and runs them inline.
        This keeps nested fork/join constructs deadlock-free on a bounded
        pool and shortens the critical path.  Re-raises the first child
        exception, if any, after all children have stopped.
        """
        if self._joined:
            raise RuntimeStateError("TaskGroup already joined")
        self._joined = True
        pool = self._pool
        if pool is not None:
            while True:
                with self._lock:
                    if self._pending == 0:
                        break
                item = pool.try_pop()
                if item is not None:
                    item.run()
                    continue
                # All our remaining children are running on real threads;
                # park on the pool, which is pinged by submissions and by
                # every task completion (ours included).  The timeout is a
                # belt-and-suspenders backstop, not the wake mechanism.
                pool.wait(0.05)
        if self._errors:
            raise self._errors[0]
        return max((c.now for c in self._clocks), default=0.0)

    @property
    def task_count(self) -> int:
        """Number of tasks spawned into this group."""
        return self._spawned
