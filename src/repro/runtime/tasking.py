"""Task groups: structured fork/join over real threads with virtual clocks.

Chapel's ``coforall`` creates one task per iteration and blocks until all
complete; ``forall`` creates a bounded number of worker tasks.  Both map
here onto :class:`TaskGroup`: each simulated task is a real Python thread
(so interleavings, CAS retries, and races are genuine) carrying a
:class:`~repro.runtime.clock.TaskClock` seeded from its parent.

Virtual-time composition: children are seeded at
``parent.now + fork_overhead`` where the overhead models a binomial spawn
tree (``ceil(log2(n+1))`` rounds of spawning); at ``join`` the parent's
clock jumps to the latest child finish time plus a join cost.  This is the
rule that makes a timed ``forall`` report the *slowest* task — exactly what
a wall-clock measurement on the real machine reports.

Exception policy: the first exception raised by any child is re-raised in
the parent at ``join`` (after all children have stopped), so test failures
inside tasks surface as ordinary test failures.
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from ..errors import RuntimeStateError
from .clock import TaskClock
from .context import TaskContext, context_scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import Runtime

__all__ = ["TaskGroup", "spawn_tree_overhead"]


def spawn_tree_overhead(n_tasks: int, per_spawn: float) -> float:
    """Virtual cost of launching ``n_tasks`` via a binomial spawn tree.

    A single task spawning ``n`` children serially would pay ``n *
    per_spawn``; real runtimes fan out in a tree, paying ``ceil(log2(n+1))``
    rounds.  We charge every child the full tree depth (a conservative,
    uniform seed time).
    """
    if n_tasks <= 0:
        return 0.0
    return math.ceil(math.log2(n_tasks + 1)) * per_spawn


class TaskGroup:
    """A structured group of simulated tasks (one real thread each)."""

    def __init__(self, runtime: "Runtime") -> None:
        self._rt = runtime
        self._threads: List[threading.Thread] = []
        self._clocks: List[TaskClock] = []
        self._errors: List[BaseException] = []
        self._errlock = threading.Lock()
        self._joined = False

    def spawn(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        *,
        locale_id: int,
        start_time: float,
    ) -> None:
        """Launch ``fn(*args)`` as a task on ``locale_id`` at ``start_time``.

        The task receives a fresh :class:`TaskContext`; its RNG is seeded
        deterministically from the runtime seed and the task id so workload
        randomness is reproducible run-to-run.
        """
        if self._joined:
            raise RuntimeStateError("TaskGroup already joined")
        clock = TaskClock(start_time)
        self._clocks.append(clock)
        task_id = self._rt._next_task_id()
        ctx = TaskContext(
            runtime=self._rt,
            locale_id=locale_id,
            clock=clock,
            task_id=task_id,
        )
        ctx.rng.seed((self._rt.config.seed << 20) ^ task_id)

        def _run() -> None:
            try:
                with context_scope(ctx):
                    fn(*args)
            except BaseException as exc:  # noqa: BLE001 - forwarded at join
                with self._errlock:
                    self._errors.append(exc)

        t = threading.Thread(target=_run, name=f"repro-task-{task_id}", daemon=True)
        self._threads.append(t)
        t.start()

    def join(self) -> float:
        """Block until all tasks finish; return the latest virtual finish.

        Re-raises the first child exception, if any.
        """
        if self._joined:
            raise RuntimeStateError("TaskGroup already joined")
        self._joined = True
        for t in self._threads:
            t.join()
        if self._errors:
            raise self._errors[0]
        return max((c.now for c in self._clocks), default=0.0)

    @property
    def task_count(self) -> int:
        """Number of tasks spawned into this group."""
        return len(self._threads)
